// Tests for util/log.h: level filtering, structured rendering (text and
// NDJSON), token-bucket rate limiting, and concurrent writers (the
// latter doubles as the TSan pin for the logger's locking).

#include "util/log.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "server/json.h"

namespace karl::util {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Fresh (removed) temp path: Logger::Open appends, so a stale file from
// a previous run would skew line counts.
std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(LogLevelTest, ParseAcceptsTheFourLevels) {
  ASSERT_TRUE(ParseLogLevel("debug").ok());
  EXPECT_EQ(ParseLogLevel("debug").value(), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info").value(), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn").value(), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error").value(), LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("verbose").ok());
  EXPECT_FALSE(ParseLogLevel("INFO").ok());
  EXPECT_FALSE(ParseLogLevel("").ok());
}

TEST(LoggerTest, LevelFilteringDropsBelowMinimum) {
  const std::string path = TempPath("log_level_filter.log");
  {
    Logger::Options options;
    options.min_level = LogLevel::kWarn;
    auto logger = Logger::Open(path, options);
    ASSERT_TRUE(logger.ok()) << logger.status().ToString();
    Logger& log = *logger.value();
    EXPECT_FALSE(log.enabled(LogLevel::kDebug));
    EXPECT_FALSE(log.enabled(LogLevel::kInfo));
    EXPECT_TRUE(log.enabled(LogLevel::kWarn));
    log.Log(LogLevel::kDebug, "dropped");
    log.Log(LogLevel::kInfo, "dropped");
    log.Log(LogLevel::kWarn, "kept");
    log.Log(LogLevel::kError, "kept");
    EXPECT_EQ(log.emitted(), 2u);
  }
  const auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("WARN kept"), std::string::npos);
  EXPECT_NE(lines[1].find("ERROR kept"), std::string::npos);
}

TEST(LoggerTest, NdjsonLinesAreValidJsonWithTypedFields) {
  const std::string path = TempPath("log_ndjson.log");
  {
    Logger::Options options;
    options.ndjson = true;
    auto logger = Logger::Open(path, options);
    ASSERT_TRUE(logger.ok()) << logger.status().ToString();
    logger.value()->Log(LogLevel::kInfo, "request",
                        {{"peer", "127.0.0.1:1234"},
                         {"rows", static_cast<uint64_t>(17)},
                         {"eval_us", 12.5},
                         {"delta", static_cast<int64_t>(-3)},
                         {"ok", true},
                         {"note", "quote \" and\nnewline"}});
  }
  const auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  auto parsed = server::Json::Parse(lines[0]);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << lines[0];
  const server::Json& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.Find("level")->string_value(), "info");
  EXPECT_EQ(root.Find("event")->string_value(), "request");
  EXPECT_EQ(root.Find("peer")->string_value(), "127.0.0.1:1234");
  EXPECT_EQ(root.Find("rows")->number_value(), 17.0);
  EXPECT_EQ(root.Find("eval_us")->number_value(), 12.5);
  EXPECT_EQ(root.Find("delta")->number_value(), -3.0);
  EXPECT_TRUE(root.Find("ok")->bool_value());
  EXPECT_EQ(root.Find("note")->string_value(), "quote \" and\nnewline");
  ASSERT_NE(root.Find("ts"), nullptr);  // ISO-8601 UTC timestamp.
  EXPECT_NE(root.Find("ts")->string_value().find('T'), std::string::npos);
}

TEST(LoggerTest, TextFormatIsSingleLineKeyValue) {
  const std::string path = TempPath("log_text.log");
  {
    auto logger = Logger::Open(path, Logger::Options{});
    ASSERT_TRUE(logger.ok()) << logger.status().ToString();
    logger.value()->Log(LogLevel::kInfo, "server.start",
                        {{"port", static_cast<int64_t>(7070)},
                         {"model", "a b"},
                         {"embedded", "line\nbreak"}});
  }
  const auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);  // Escaping keeps one event on one line.
  EXPECT_NE(lines[0].find("INFO server.start"), std::string::npos);
  EXPECT_NE(lines[0].find("port=7070"), std::string::npos);
  EXPECT_NE(lines[0].find("model=\"a b\""), std::string::npos);
  EXPECT_NE(lines[0].find("\\n"), std::string::npos);
}

TEST(LoggerTest, RateLimiterDropsAndCounts) {
  const std::string path = TempPath("log_rate.log");
  Logger::Options options;
  options.rate_limit_per_sec = 1e-9;  // Effectively never refills.
  options.rate_limit_burst = 3.0;
  auto logger = Logger::Open(path, options);
  ASSERT_TRUE(logger.ok()) << logger.status().ToString();
  for (int i = 0; i < 8; ++i) {
    logger.value()->Log(LogLevel::kInfo, "burst");
  }
  EXPECT_EQ(logger.value()->emitted(), 3u);
  EXPECT_EQ(logger.value()->suppressed(), 5u);
  EXPECT_EQ(ReadLines(path).size(), 3u);
}

TEST(LoggerTest, SuppressedCountSurfacesOnNextEmittedLine) {
  const std::string path = TempPath("log_suppressed.log");
  Logger::Options options;
  options.rate_limit_per_sec = 1000.0;
  options.rate_limit_burst = 1.0;
  auto logger = Logger::Open(path, options);
  ASSERT_TRUE(logger.ok()) << logger.status().ToString();
  logger.value()->Log(LogLevel::kInfo, "first");
  // Consecutive calls land within the 1ms-per-token refill, so this
  // terminates as soon as one line is dropped.
  while (logger.value()->suppressed() == 0) {
    logger.value()->Log(LogLevel::kInfo, "flood");
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  logger.value()->Log(LogLevel::kInfo, "after");
  const auto lines = ReadLines(path);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("after"), std::string::npos);
  EXPECT_NE(lines.back().find("suppressed="), std::string::npos);
}

TEST(LoggerTest, ConcurrentWritersNeverInterleaveLines) {
  const std::string path = TempPath("log_concurrent.log");
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  {
    Logger::Options options;
    options.ndjson = true;
    auto logger = Logger::Open(path, options);
    ASSERT_TRUE(logger.ok()) << logger.status().ToString();
    Logger* log = logger.value().get();
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([log, t] {
        for (int i = 0; i < kLines; ++i) {
          log->Log(LogLevel::kInfo, "tick",
                   {{"thread", static_cast<int64_t>(t)},
                    {"i", static_cast<int64_t>(i)}});
        }
      });
    }
    for (std::thread& w : writers) w.join();
    EXPECT_EQ(log->emitted(),
              static_cast<uint64_t>(kThreads) * kLines);
  }
  const auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads) * kLines);
  for (const std::string& line : lines) {
    auto parsed = server::Json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << "interleaved line: " << line;
  }
}

TEST(LoggerTest, NullSafeFreeFunctionIsANoOp) {
  Log(nullptr, LogLevel::kError, "nobody listening", {{"x", 1.0}});
  // DefaultLogger targets stderr; just exercise the path.
  EXPECT_TRUE(DefaultLogger().enabled(LogLevel::kError));
}

}  // namespace
}  // namespace karl::util
