// Tests for the ML substrate: KDE (Scott's rule), SMO SVM trainers, and
// model I/O.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/evaluator.h"
#include "data/normalize.h"
#include "data/synthetic.h"
#include "ml/kde.h"
#include "ml/model_io.h"
#include "ml/svm.h"
#include "util/rng.h"

namespace karl::ml {
namespace {

// --------------------------------- KDE ---------------------------------

TEST(ScottBandwidthTest, ShrinksWithSampleSize) {
  util::Rng rng(1);
  const data::Matrix small = data::SampleUniform(100, 3, 0.0, 1.0, rng);
  const data::Matrix large = data::SampleUniform(10000, 3, 0.0, 1.0, rng);
  EXPECT_GT(ScottBandwidth(small), ScottBandwidth(large));
}

TEST(ScottBandwidthTest, ScalesWithSpread) {
  util::Rng rng(2);
  data::Matrix narrow = data::SampleUniform(500, 2, 0.0, 1.0, rng);
  data::Matrix wide = data::SampleUniform(500, 2, 0.0, 10.0, rng);
  EXPECT_GT(ScottBandwidth(wide), 5.0 * ScottBandwidth(narrow));
}

TEST(ScottBandwidthTest, ConstantDataGuard) {
  data::Matrix constant(50, 2);
  EXPECT_GT(ScottBandwidth(constant), 0.0);
}

TEST(BandwidthToGammaTest, InverseSquareRelation) {
  EXPECT_DOUBLE_EQ(BandwidthToGamma(1.0), 0.5);
  EXPECT_DOUBLE_EQ(BandwidthToGamma(0.5), 2.0);
}

TEST(KdeModelTest, FitRejectsEmptyData) {
  EngineOptions options;
  EXPECT_FALSE(KdeModel::Fit(data::Matrix(), options).ok());
}

TEST(KdeModelTest, DensityHigherInsideClusterThanOutside) {
  util::Rng rng(3);
  const data::Matrix pts = data::SampleClustered(2000, 3, 1, 0.05, rng);
  EngineOptions options;
  auto model = KdeModel::Fit(pts, options);
  ASSERT_TRUE(model.ok());

  // A dataset point sits in a dense region; a corner point does not.
  const auto inside = pts.Row(0);
  const std::vector<double> q_in(inside.begin(), inside.end());
  const std::vector<double> q_out(3, -0.49);
  EXPECT_GT(model.value().ExactDensity(q_in),
            10.0 * model.value().ExactDensity(q_out) + 1e-12);
}

TEST(KdeModelTest, ApproximateDensityWithinEps) {
  util::Rng rng(4);
  const data::Matrix pts = data::SampleClustered(1000, 3, 2, 0.08, rng);
  EngineOptions options;
  auto model = KdeModel::Fit(pts, options);
  ASSERT_TRUE(model.ok());
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(3);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    const double exact = model.value().ExactDensity(q);
    const double approx = model.value().Density(q, 0.1);
    EXPECT_NEAR(approx, exact, 0.1 * exact + 1e-15);
  }
}

TEST(KdeModelTest, GammaOverrideRespected) {
  util::Rng rng(5);
  const data::Matrix pts = data::SampleUniform(100, 2, 0.0, 1.0, rng);
  EngineOptions options;
  auto model = KdeModel::Fit(pts, options, /*gamma_override=*/7.5);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model.value().gamma(), 7.5);
}

TEST(KdeModelTest, DensityAboveMatchesExactComparison) {
  util::Rng rng(6);
  const data::Matrix pts = data::SampleClustered(800, 2, 2, 0.07, rng);
  EngineOptions options;
  auto model = KdeModel::Fit(pts, options);
  ASSERT_TRUE(model.ok());
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(2);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    const double exact = model.value().ExactDensity(q);
    EXPECT_EQ(model.value().DensityAbove(q, exact * 0.9), true);
    EXPECT_EQ(model.value().DensityAbove(q, exact * 1.1), false);
  }
}

// ------------------------------ 2-class SVM ------------------------------

TEST(TwoClassSvmTest, RejectsBadInputs) {
  data::LabeledDataset ds;
  const auto kernel = core::KernelParams::Gaussian(1.0);
  TwoClassSvmParams params;
  EXPECT_FALSE(TrainTwoClassSvm(ds, kernel, params).ok());  // Empty.

  util::Rng rng(7);
  ds = data::MakeTwoClassDataset(20, 2, 0.9, rng);
  ds.labels[0] = 0.5;  // Invalid label.
  EXPECT_FALSE(TrainTwoClassSvm(ds, kernel, params).ok());

  ds = data::MakeTwoClassDataset(20, 2, 0.9, rng);
  for (auto& y : ds.labels) y = 1.0;  // One class only.
  EXPECT_FALSE(TrainTwoClassSvm(ds, kernel, params).ok());

  ds = data::MakeTwoClassDataset(20, 2, 0.9, rng);
  params.c = -1.0;
  EXPECT_FALSE(TrainTwoClassSvm(ds, kernel, params).ok());
}

TEST(TwoClassSvmTest, LearnsSeparableData) {
  util::Rng rng(8);
  const auto train = data::MakeTwoClassDataset(300, 4, 0.9, rng);
  const auto kernel = core::KernelParams::Gaussian(2.0);
  TwoClassSvmParams params;
  params.c = 10.0;
  auto model = TrainTwoClassSvm(train, kernel, params);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GT(model.value().support_vectors.rows(), 0u);
  EXPECT_GT(SvmAccuracy(model.value(), train.points, train.labels), 0.95);

  // Generalises to a fresh sample of the same distribution.
  util::Rng rng2(8);  // Same seed → same class geometry.
  const auto test = data::MakeTwoClassDataset(300, 4, 0.9, rng2);
  EXPECT_GT(SvmAccuracy(model.value(), test.points, test.labels), 0.9);
}

TEST(TwoClassSvmTest, DualConstraintsHold) {
  util::Rng rng(9);
  const auto train = data::MakeTwoClassDataset(150, 3, 0.7, rng);
  const auto kernel = core::KernelParams::Gaussian(2.0);
  TwoClassSvmParams params;
  params.c = 1.0;
  auto model = TrainTwoClassSvm(train, kernel, params).ValueOrDie();

  // Coefficients are α_i y_i: |coef| ≤ C, Σ coef = Σ α_i y_i = 0.
  double sum = 0.0;
  for (const double coef : model.coefficients) {
    EXPECT_LE(std::abs(coef), params.c + 1e-9);
    sum += coef;
  }
  EXPECT_NEAR(sum, 0.0, 1e-6);
}

TEST(TwoClassSvmTest, CoefficientsAreTypeThree) {
  util::Rng rng(10);
  const auto train = data::MakeTwoClassDataset(150, 3, 0.7, rng);
  auto model = TrainTwoClassSvm(train, core::KernelParams::Gaussian(2.0),
                                TwoClassSvmParams{})
                   .ValueOrDie();
  bool has_pos = false, has_neg = false;
  for (const double coef : model.coefficients) {
    has_pos |= coef > 0;
    has_neg |= coef < 0;
  }
  EXPECT_TRUE(has_pos);
  EXPECT_TRUE(has_neg);
}

TEST(TwoClassSvmTest, PolynomialKernelTrains) {
  util::Rng rng(11);
  auto train = data::MakeTwoClassDataset(200, 3, 0.9, rng);
  // Paper normalises polynomial-kernel data to [-1,1]^d.
  data::MinMaxNormalize(&train.points, -1.0, 1.0);
  const auto kernel = core::KernelParams::Polynomial(1.0, 1.0, 3);
  TwoClassSvmParams params;
  params.c = 5.0;
  auto model = TrainTwoClassSvm(train, kernel, params);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(SvmAccuracy(model.value(), train.points, train.labels), 0.85);
}

// ------------------------------ 1-class SVM ------------------------------

TEST(OneClassSvmTest, RejectsBadInputs) {
  const auto kernel = core::KernelParams::Gaussian(1.0);
  OneClassSvmParams params;
  EXPECT_FALSE(TrainOneClassSvm(data::Matrix(), kernel, params).ok());
  util::Rng rng(12);
  const data::Matrix pts = data::SampleUniform(20, 2, 0.0, 1.0, rng);
  params.nu = 0.0;
  EXPECT_FALSE(TrainOneClassSvm(pts, kernel, params).ok());
  params.nu = 1.5;
  EXPECT_FALSE(TrainOneClassSvm(pts, kernel, params).ok());
}

TEST(OneClassSvmTest, CoefficientsAreTypeTwo) {
  util::Rng rng(13);
  const data::Matrix pts = data::SampleClustered(200, 3, 2, 0.05, rng);
  OneClassSvmParams params;
  params.nu = 0.2;
  auto model =
      TrainOneClassSvm(pts, core::KernelParams::Gaussian(3.0), params)
          .ValueOrDie();
  ASSERT_GT(model.coefficients.size(), 0u);
  double sum = 0.0;
  const double cap = 1.0 / (params.nu * 200.0);
  for (const double coef : model.coefficients) {
    EXPECT_GT(coef, 0.0);
    EXPECT_LE(coef, cap + 1e-9);
    sum += coef;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);  // Σα = 1 dual constraint.
}

TEST(OneClassSvmTest, FlagsOutliersAsNegative) {
  util::Rng rng(14);
  const data::Matrix inliers = data::SampleClustered(400, 3, 1, 0.04, rng);
  OneClassSvmParams params;
  params.nu = 0.1;
  auto model =
      TrainOneClassSvm(inliers, core::KernelParams::Gaussian(8.0), params)
          .ValueOrDie();

  // Most training inliers accepted (≈ 1 − ν).
  size_t accepted = 0;
  for (size_t i = 0; i < inliers.rows(); ++i) {
    accepted += SvmPredict(model, inliers.Row(i)) > 0;
  }
  EXPECT_GT(accepted, inliers.rows() * 7 / 10);

  // Far-away points rejected.
  const std::vector<double> far(3, 5.0);
  EXPECT_EQ(SvmPredict(model, far), -1);
}

// -------------------- SVM ↔ KAQ bridge & model I/O ----------------------

TEST(SvmEngineBridgeTest, EngineReproducesDecisions) {
  util::Rng rng(15);
  const auto train = data::MakeTwoClassDataset(250, 4, 0.8, rng);
  auto model = TrainTwoClassSvm(train, core::KernelParams::Gaussian(2.0),
                                TwoClassSvmParams{})
                   .ValueOrDie();

  EngineOptions options;
  options.leaf_capacity = 8;
  double tau = 0.0;
  auto engine = MakeEngineFromSvm(model, options, &tau);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_DOUBLE_EQ(tau, model.rho);
  EXPECT_EQ(engine.value().weighting_type(), WeightingType::kTypeIII);

  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    const bool scan_decision = SvmDecision(model, q) > 0.0;
    EXPECT_EQ(engine.value().Tkaq(q, tau), scan_decision) << "trial " << trial;
  }
}

TEST(SvmEngineBridgeTest, OneClassEngineIsTypeTwo) {
  util::Rng rng(16);
  const data::Matrix pts = data::SampleClustered(150, 3, 1, 0.05, rng);
  OneClassSvmParams params;
  auto model =
      TrainOneClassSvm(pts, core::KernelParams::Gaussian(4.0), params)
          .ValueOrDie();
  EngineOptions options;
  double tau = 0.0;
  auto engine = MakeEngineFromSvm(model, options, &tau);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.value().weighting_type(), WeightingType::kTypeII);
}

TEST(ModelIoTest, RoundTripsExactly) {
  util::Rng rng(17);
  const auto train = data::MakeTwoClassDataset(100, 3, 0.8, rng);
  auto model = TrainTwoClassSvm(train, core::KernelParams::Gaussian(1.5),
                                TwoClassSvmParams{})
                   .ValueOrDie();
  auto back = ParseSvmModel(WriteSvmModel(model));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const auto& m = back.value();
  EXPECT_EQ(m.kernel.type, model.kernel.type);
  EXPECT_DOUBLE_EQ(m.kernel.gamma, model.kernel.gamma);
  EXPECT_DOUBLE_EQ(m.rho, model.rho);
  ASSERT_EQ(m.coefficients.size(), model.coefficients.size());
  for (size_t i = 0; i < m.coefficients.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.coefficients[i], model.coefficients[i]);
  }
  ASSERT_EQ(m.support_vectors.rows(), model.support_vectors.rows());
  for (size_t i = 0; i < m.support_vectors.rows(); ++i) {
    for (size_t j = 0; j < m.support_vectors.cols(); ++j) {
      EXPECT_DOUBLE_EQ(m.support_vectors(i, j), model.support_vectors(i, j));
    }
  }
}

TEST(ModelIoTest, FileRoundTrip) {
  util::Rng rng(18);
  const data::Matrix pts = data::SampleClustered(80, 2, 1, 0.05, rng);
  auto model =
      TrainOneClassSvm(pts, core::KernelParams::Gaussian(2.0),
                       OneClassSvmParams{})
          .ValueOrDie();
  const std::string path =
      (std::filesystem::temp_directory_path() / "karl_model_test.txt")
          .string();
  ASSERT_TRUE(SaveSvmModel(path, model).ok());
  auto back = LoadSvmModel(path);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back.value().rho, model.rho);
  std::filesystem::remove(path);
}

TEST(ModelIoTest, RejectsGarbage) {
  EXPECT_FALSE(ParseSvmModel("not a model").ok());
  EXPECT_FALSE(ParseSvmModel("kernel gaussian\nrho 1\n").ok());  // No SV.
  EXPECT_FALSE(
      ParseSvmModel("kernel martian\nSV\n").ok());  // Unknown kernel.
  EXPECT_FALSE(
      ParseSvmModel("dim 2\nnr_sv 2\nSV\n1.0 0.5 0.5\n").ok());  // Truncated.
}

TEST(ModelIoTest, PolynomialKernelFieldsPreserved) {
  SvmModel model;
  model.kernel = core::KernelParams::Polynomial(0.25, 1.5, 4);
  model.rho = -2.0;
  model.support_vectors = data::Matrix(1, 2, {0.1, 0.2});
  model.coefficients = {0.7};
  auto back = ParseSvmModel(WriteSvmModel(model));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().kernel.type, core::KernelType::kPolynomial);
  EXPECT_DOUBLE_EQ(back.value().kernel.beta, 1.5);
  EXPECT_EQ(back.value().kernel.degree, 4);
}

}  // namespace
}  // namespace karl::ml
