// Tests for the annotated locking layer (util/mutex.h): scoped-lock
// behaviour, CondVar wait/notify (a TSan-exercised regression for the
// wrapper's adopt/release dance around std::condition_variable),
// SharedMutex reader/writer interleavings, and — in debug builds —
// death tests pinning the runtime AssertHeld() checks.

#include "util/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace karl::util {
namespace {

TEST(MutexTest, LockUnlockAndScopedLock) {
  Mutex mu;
  mu.Lock();
  mu.AssertHeld();
  mu.Unlock();
  {
    const MutexLock lock(&mu);
    mu.AssertHeld();
  }
  // Released again: TryLock must succeed.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, TryLockFailsWhenHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> got{true};
  std::thread other([&] { got = mu.TryLock(); });
  other.join();
  EXPECT_FALSE(got.load());
  mu.Unlock();
}

TEST(MutexTest, GuardedCounterUnderContention) {
  // The canonical guarded-field pattern the annotations protect; under
  // the TSan preset this doubles as a race regression on the wrapper.
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        const MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 4000);
}

TEST(CondVarTest, WaitWakesOnSignal) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    const MutexLock lock(&mu);
    ready = true;
    cv.Signal();
  });
  mu.Lock();
  while (!ready) cv.Wait(&mu);
  // Wait must reacquire the lock before returning.
  mu.AssertHeld();
  mu.Unlock();
  waker.join();
}

TEST(CondVarTest, SignalAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> awake{0};
  std::vector<std::thread> waiters;
  waiters.reserve(3);
  for (int t = 0; t < 3; ++t) {
    waiters.emplace_back([&] {
      mu.Lock();
      while (!go) cv.Wait(&mu);
      mu.Unlock();
      awake.fetch_add(1);
    });
  }
  {
    const MutexLock lock(&mu);
    go = true;
  }
  cv.SignalAll();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(awake.load(), 3);
}

TEST(CondVarTest, WaitForTimesOutWithoutSignal) {
  Mutex mu;
  CondVar cv;
  mu.Lock();
  const bool signalled = cv.WaitFor(&mu, std::chrono::microseconds(1000));
  EXPECT_FALSE(signalled);
  mu.AssertHeld();  // Reacquired even on timeout.
  mu.Unlock();
}

TEST(CondVarTest, ProducerConsumerHandoff) {
  // Ping-pong through the wrapper under the explicit while-loop wait
  // idiom (the TSA-analyzable form used across the serving stack).
  Mutex mu;
  CondVar cv;
  int value = 0;
  bool has_value = false;
  int sum = 0;
  std::thread producer([&] {
    for (int i = 1; i <= 100; ++i) {
      mu.Lock();
      while (has_value) cv.Wait(&mu);
      value = i;
      has_value = true;
      mu.Unlock();
      cv.SignalAll();
    }
  });
  for (int i = 0; i < 100; ++i) {
    mu.Lock();
    while (!has_value) cv.Wait(&mu);
    sum += value;
    has_value = false;
    mu.Unlock();
    cv.SignalAll();
  }
  producer.join();
  EXPECT_EQ(sum, 5050);
}

TEST(SharedMutexTest, ManyConcurrentReaders) {
  SharedMutex mu;
  int shared_value = 7;
  std::atomic<int> readers_in{0};
  std::atomic<int> max_overlap{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      const ReaderMutexLock lock(&mu);
      mu.AssertReaderHeld();
      const int now = readers_in.fetch_add(1) + 1;
      int seen = max_overlap.load();
      while (now > seen && !max_overlap.compare_exchange_weak(seen, now)) {
      }
      EXPECT_EQ(shared_value, 7);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      readers_in.fetch_sub(1);
    });
  }
  for (auto& th : readers) th.join();
  // With 4 readers sleeping inside the lock, at least two must have
  // overlapped — i.e. the shared mode really is shared.
  EXPECT_GE(max_overlap.load(), 2);
}

TEST(SharedMutexTest, WriterExcludesReadersAndWriters) {
  SharedMutex mu;
  int value = 0;
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        const WriterMutexLock lock(&mu);
        ++value;
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const ReaderMutexLock lock(&mu);
      const int snapshot = value;
      EXPECT_GE(snapshot, 0);
      EXPECT_LE(snapshot, 2000);
    }
  });
  for (auto& th : writers) th.join();
  stop = true;
  reader.join();
  EXPECT_EQ(value, 2000);
}

#ifndef NDEBUG
// The runtime owner bookkeeping only exists in debug builds; release
// builds compile AssertHeld down to the static annotation alone.

TEST(MutexDeathTest, AssertHeldAbortsWhenNotHeld) {
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld");
}

TEST(MutexDeathTest, AssertHeldAbortsForNonOwningThread) {
  Mutex mu;
  mu.Lock();
  std::thread other([&mu] {
    EXPECT_DEATH(mu.AssertHeld(), "AssertHeld");
  });
  other.join();
  mu.Unlock();
}

TEST(SharedMutexDeathTest, AssertHeldAbortsWithoutExclusiveHold) {
  SharedMutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld");
}

TEST(SharedMutexDeathTest, AssertHeldAbortsUnderSharedHold) {
  SharedMutex mu;
  const ReaderMutexLock lock(&mu);
  // A shared hold is not an exclusive hold.
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld");
}

TEST(SharedMutexDeathTest, AssertReaderHeldAbortsWhenNotHeld) {
  SharedMutex mu;
  EXPECT_DEATH(mu.AssertReaderHeld(), "AssertReaderHeld");
}
#endif  // !NDEBUG

}  // namespace
}  // namespace karl::util
