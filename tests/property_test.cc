// Property-based tests: randomised sweeps asserting the library's core
// invariants over many generated configurations.
//
//  P1. Bound validity: for every kernel, bound kind, tree, node and query,
//      lb ≤ Σ w_i K(q,p_i) ≤ ub.
//  P2. KARL dominance (Gaussian): KARL's node bounds are never looser
//      than SOTA's (Lemmas 3–4).
//  P3. Query correctness: TKAQ == (exact > τ) and eKAQ within ε, for any
//      tree/bound/weighting combination.
//  P4. Refinement monotonicity: global lb never decreases, ub never
//      increases during refinement.
//  P5. Linear-bound functions sandwich the profile pointwise on the
//      interval they were constructed for.
//  P6. Randomised batch queries match brute force (see below).
//  P7. The blocked SoA mirror is a bit-exact re-layout of the tree's
//      permuted points, and vectorized queries match brute force.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/batch.h"
#include "core/bounds.h"
#include "core/evaluator.h"
#include "core/karl.h"
#include "core/simd/simd.h"
#include "data/synthetic.h"
#include "index/ball_tree.h"
#include "index/kd_tree.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace karl {
namespace {

using core::BoundKind;
using core::Curvature;
using core::KernelParams;
using core::KernelProfile;
using core::LinearFn;

struct PropertyCase {
  uint64_t seed;
  size_t n;
  size_t d;
  index::IndexKind index_kind;
  size_t leaf_capacity;
  int kernel_id;   // 0 gaussian, 1 poly3, 2 poly2, 3 sigmoid
  int weighting;   // 1, 2, 3
};

KernelParams KernelForCase(const PropertyCase& pc, size_t d) {
  const double gamma = 1.0 / static_cast<double>(d);
  switch (pc.kernel_id) {
    case 0:
      return KernelParams::Gaussian(8.0 * gamma * static_cast<double>(d));
    case 1:
      return KernelParams::Polynomial(gamma, 0.1, 3);
    case 2:
      return KernelParams::Polynomial(gamma, -0.1, 2);
    default:
      return KernelParams::Sigmoid(gamma, 0.05);
  }
}

std::vector<double> WeightsForCase(const PropertyCase& pc, size_t n,
                                   util::Rng& rng) {
  std::vector<double> w(n);
  for (auto& v : w) {
    switch (pc.weighting) {
      case 1:
        v = 0.7;
        break;
      case 2:
        v = rng.Uniform(0.05, 1.5);
        break;
      default:
        v = rng.Uniform(-1.0, 1.0);
        if (v == 0.0) v = 0.5;
        break;
    }
  }
  return w;
}

std::unique_ptr<index::TreeIndex> TreeForCase(const PropertyCase& pc,
                                              const data::Matrix& pts,
                                              std::span<const double> w) {
  if (pc.index_kind == index::IndexKind::kKdTree) {
    return index::KdTree::Build(pts, w, pc.leaf_capacity).ValueOrDie();
  }
  return index::BallTree::Build(pts, w, pc.leaf_capacity).ValueOrDie();
}

class QueryPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

// P3: query correctness through the Engine across the whole matrix of
// configurations.
TEST_P(QueryPropertyTest, ThresholdAndApproximateMatchBruteForce) {
  const PropertyCase pc = GetParam();
  util::Rng rng(pc.seed);
  const data::Matrix pts =
      data::SampleClustered(pc.n, pc.d, 3, 0.08, rng);
  const auto weights = WeightsForCase(pc, pc.n, rng);
  const KernelParams kernel = KernelForCase(pc, pc.d);

  for (const auto bound_kind : {BoundKind::kSota, BoundKind::kKarl}) {
    EngineOptions options;
    options.kernel = kernel;
    options.bounds = bound_kind;
    options.index_kind = pc.index_kind;
    options.leaf_capacity = pc.leaf_capacity;
    auto engine = Engine::Build(pts, weights, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    for (int trial = 0; trial < 6; ++trial) {
      std::vector<double> q(pc.d);
      for (auto& v : q) v = rng.Uniform(-0.1, 1.1);
      const double exact = core::ExactAggregate(pts, weights, kernel, q);

      // Refinement maintains bounds incrementally, so decisions carry an
      // absolute noise floor of ~eps_machine x (root bound magnitude) —
      // inherent to the paper's algorithm. Skip assertions when the
      // margin |exact - tau| sits below that floor.
      const double noise_floor =
          1e-12 * (1.0 + std::abs(exact));
      for (const double rel : {0.7, 0.97, 1.03, 1.4}) {
        const double tau = exact * rel;
        if (std::abs(exact - tau) <= noise_floor) continue;
        EXPECT_EQ(engine.value().Tkaq(q, tau), exact > tau)
            << "bounds=" << BoundKindToString(bound_kind) << " tau=" << tau
            << " exact=" << exact;
      }

      if (pc.weighting != 3) {
        const double approx = engine.value().Ekaq(q, 0.2);
        // Symmetric relative-error guarantee (F may be negative for
        // polynomial/sigmoid profiles even under positive weights).
        EXPECT_LE(std::abs(approx - exact), 0.2 * std::abs(exact) + 1e-10);
      }
    }
  }
}

// P1: node-bound validity on every node of the case's tree.
TEST_P(QueryPropertyTest, NodeBoundsAreValidEverywhere) {
  const PropertyCase pc = GetParam();
  util::Rng rng(pc.seed + 1000);
  const data::Matrix pts =
      data::SampleClustered(pc.n, pc.d, 3, 0.08, rng);
  // Bound functions require positive weights (the engine pre-splits
  // Type III), so test the positive-space contract directly.
  std::vector<double> weights(pc.n);
  for (auto& v : weights) v = rng.Uniform(0.05, 1.5);
  const KernelParams kernel = KernelForCase(pc, pc.d);
  const auto tree = TreeForCase(pc, pts, weights);

  for (const auto bound_kind : {BoundKind::kSota, BoundKind::kKarl}) {
    auto bounds = core::MakeBoundFunction(kernel, bound_kind).ValueOrDie();
    for (int trial = 0; trial < 3; ++trial) {
      std::vector<double> q(pc.d);
      for (auto& v : q) v = rng.Uniform(-0.2, 1.2);
      const core::QueryContext ctx = core::QueryContext::Make(q);
      for (size_t id = 0; id < tree->num_nodes(); ++id) {
        const auto& nd = tree->node(id);
        double exact = 0.0;
        for (uint32_t i = nd.begin; i < nd.end; ++i) {
          exact += tree->weights()[i] *
                   core::KernelValue(kernel, q, tree->points().Row(i));
        }
        double lb = 0.0, ub = 0.0;
        bounds->NodeBounds(*tree, static_cast<index::NodeId>(id), ctx, &lb,
                           &ub);
        const double slack = 1e-7 * (1.0 + std::abs(exact));
        ASSERT_LE(lb, exact + slack)
            << BoundKindToString(bound_kind) << " node " << id;
        ASSERT_GE(ub, exact - slack)
            << BoundKindToString(bound_kind) << " node " << id;
      }
    }
  }
}

// P4: refinement monotonicity. This is a theorem only for the Gaussian
// chord/tangent bounds over nested kd boxes (child intervals shrink and
// the constructions are pointwise monotone in the interval). Ball-tree
// child balls are not nested in the parent ball, and the mixed-interval
// pivot construction is not pointwise monotone across intervals, so for
// those only bound validity is asserted.
TEST_P(QueryPropertyTest, RefinementIsMonotone) {
  const PropertyCase pc = GetParam();
  util::Rng rng(pc.seed + 2000);
  const data::Matrix pts =
      data::SampleClustered(pc.n, pc.d, 3, 0.08, rng);
  std::vector<double> weights(pc.n, 1.0);
  const KernelParams kernel = KernelForCase(pc, pc.d);
  const auto tree = TreeForCase(pc, pts, weights);

  core::Evaluator::Options options;
  options.bounds = BoundKind::kKarl;
  auto ev = core::Evaluator::Create(tree.get(), nullptr, kernel, options)
                .ValueOrDie();

  std::vector<double> q(pc.d, 0.5);
  const double exact =
      core::ExactAggregate(pts, weights, kernel, q);
  double prev_lb = -1e300, prev_ub = 1e300;
  bool monotone = true;
  bool valid = true;
  core::TraceFn trace = [&](size_t, double lb, double ub) {
    if (lb < prev_lb - 1e-7 || ub > prev_ub + 1e-7) monotone = false;
    if (lb > exact + 1e-6 || ub < exact - 1e-6) valid = false;
    prev_lb = lb;
    prev_ub = ub;
  };
  double lb = 0.0, ub = 0.0;
  ev.RefineToConvergence(q, 1000000, &lb, &ub, &trace);
  if (pc.index_kind == index::IndexKind::kKdTree && pc.kernel_id == 0) {
    EXPECT_TRUE(monotone);
  }
  EXPECT_TRUE(valid);
  EXPECT_LE(lb, ub + 1e-9);
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  uint64_t seed = 40;
  for (const auto kind :
       {index::IndexKind::kKdTree, index::IndexKind::kBallTree}) {
    for (const int kernel_id : {0, 1, 2, 3}) {
      for (const int weighting : {1, 2, 3}) {
        cases.push_back(PropertyCase{seed++, 250, 4, kind,
                                     (seed % 2 == 0) ? size_t{8} : size_t{32},
                                     kernel_id, weighting});
      }
    }
  }
  // A few stress shapes: tiny leaf, high-d, small n.
  cases.push_back({seed++, 64, 2, index::IndexKind::kKdTree, 1, 0, 1});
  cases.push_back({seed++, 300, 24, index::IndexKind::kKdTree, 16, 0, 2});
  cases.push_back({seed++, 40, 3, index::IndexKind::kBallTree, 2, 3, 3});
  return cases;
}

std::string PropertyCaseName(
    const ::testing::TestParamInfo<PropertyCase>& info) {
  const auto& pc = info.param;
  static const char* const kKernels[] = {"Gauss", "Poly3", "Poly2",
                                         "Sigmoid"};
  return std::string(pc.index_kind == index::IndexKind::kKdTree ? "Kd"
                                                                : "Ball") +
         kKernels[pc.kernel_id] + "W" + std::to_string(pc.weighting) + "N" +
         std::to_string(pc.n) + "D" + std::to_string(pc.d) + "C" +
         std::to_string(pc.leaf_capacity);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QueryPropertyTest,
                         ::testing::ValuesIn(MakeCases()), PropertyCaseName);

// P2: KARL dominance over SOTA on random Gaussian configurations.
TEST(BoundDominanceProperty, KarlNeverLooserThanSotaGaussian) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed * 31);
    const size_t d = 2 + seed % 5;
    const data::Matrix pts =
        data::SampleClustered(200 + 50 * seed, d, 1 + seed % 4, 0.1, rng);
    std::vector<double> weights(pts.rows());
    for (auto& w : weights) w = rng.Uniform(0.1, 2.0);
    auto tree = index::KdTree::Build(pts, weights, 16).ValueOrDie();
    const auto kernel = KernelParams::Gaussian(rng.Uniform(0.5, 10.0));
    auto sota = core::MakeBoundFunction(kernel, BoundKind::kSota).ValueOrDie();
    auto karl = core::MakeBoundFunction(kernel, BoundKind::kKarl).ValueOrDie();

    std::vector<double> q(d);
    for (auto& v : q) v = rng.Uniform(-0.5, 1.5);
    const core::QueryContext ctx = core::QueryContext::Make(q);
    for (size_t id = 0; id < tree->num_nodes(); ++id) {
      double slb = 0.0, sub = 0.0, klb = 0.0, kub = 0.0;
      sota->NodeBounds(*tree, static_cast<index::NodeId>(id), ctx, &slb,
                       &sub);
      karl->NodeBounds(*tree, static_cast<index::NodeId>(id), ctx, &klb,
                       &kub);
      ASSERT_GE(klb, slb - 1e-9) << "seed " << seed << " node " << id;
      ASSERT_LE(kub, sub + 1e-9) << "seed " << seed << " node " << id;
    }
  }
}

// P5: random-interval pointwise sandwich for the pure linear machinery.
TEST(LinearBoundProperty, RandomIntervalsSandwichProfiles) {
  util::Rng rng(4242);
  const std::vector<KernelParams> kernels = {
      KernelParams::Gaussian(1.0),       KernelParams::Polynomial(1, 0, 2),
      KernelParams::Polynomial(1, 0, 3), KernelParams::Polynomial(1, 0, 5),
      KernelParams::Polynomial(1, 0, 4), KernelParams::Sigmoid(1, 0),
      KernelParams::Laplacian(1.0),      KernelParams::Cauchy(1.0)};

  for (int trial = 0; trial < 260; ++trial) {
    const KernelParams& k = kernels[trial % kernels.size()];
    double lo = rng.Uniform(-3.0, 3.0);
    double hi = lo + rng.Uniform(0.01, 4.0);
    if (!core::IsInnerProductKernel(k.type)) {
      // Distance-profile arguments are non-negative.
      lo = std::abs(lo);
      hi = lo + rng.Uniform(0.01, 4.0);
    }

    LinearFn lower, upper;
    const Curvature curv = core::ClassifyProfile(k, lo, hi);
    const double t = rng.Uniform(lo, hi);
    switch (curv) {
      case Curvature::kLinear:
        continue;
      case Curvature::kConvex:
        upper = core::ProfileChord(k, lo, hi);
        lower = core::ProfileTangent(k, t);
        break;
      case Curvature::kConcave:
        lower = core::ProfileChord(k, lo, hi);
        upper = core::ProfileTangent(k, t);
        break;
      case Curvature::kMixedConcaveConvex:
        upper = core::PivotLine(k, lo, hi, true, true);
        lower = core::PivotLine(k, lo, hi, false, false);
        break;
      case Curvature::kMixedConvexConcave:
        upper = core::PivotLine(k, lo, hi, false, true);
        lower = core::PivotLine(k, lo, hi, true, false);
        break;
    }

    for (int i = 0; i <= 64; ++i) {
      const double x = lo + (hi - lo) * i / 64.0;
      const double f = KernelProfile(k, x);
      const double tol = 1e-8 * (1.0 + std::abs(f));
      ASSERT_LE(lower.At(x), f + tol)
          << core::KernelTypeToString(k.type) << " deg=" << k.degree
          << " [" << lo << "," << hi << "] x=" << x;
      ASSERT_GE(upper.At(x), f - tol)
          << core::KernelTypeToString(k.type) << " deg=" << k.degree
          << " [" << lo << "," << hi << "] x=" << x;
    }
  }
}

// P6: randomised batch cross-check. Fuzzes (kernel, γ/β/degree, τ or ε,
// thread count) and verifies the *parallel batch* answers against
// brute-force exact aggregation: TkaqBatch == (exact > τ) outside the
// refinement noise floor, EkaqBatch within (1±ε), and ExactBatch equal
// to brute force up to accumulation-order tolerance. This closes the
// loop the deterministic suites can't: batch correctness on parameter
// combinations nobody hand-picked.
TEST(BatchQueryProperty, RandomisedBatchMatchesBruteForce) {
  util::Rng rng(20260806);
  for (int trial = 0; trial < 9; ++trial) {
    const size_t d = 2 + static_cast<size_t>(rng.Uniform(0.0, 4.0));
    const size_t n = 120 + static_cast<size_t>(rng.Uniform(0.0, 180.0));
    const data::Matrix pts = data::SampleClustered(n, d, 3, 0.08, rng);

    // Random kernel with random parameters.
    KernelParams kernel;
    switch (trial % 4) {
      case 0:
        kernel = KernelParams::Gaussian(rng.Uniform(0.5, 10.0));
        break;
      case 1:
        kernel = KernelParams::Laplacian(rng.Uniform(0.5, 6.0));
        break;
      case 2:
        kernel = KernelParams::Polynomial(
            rng.Uniform(0.1, 1.0), rng.Uniform(-0.2, 0.2),
            2 + static_cast<int>(rng.Uniform(0.0, 3.0)));
        break;
      default:
        kernel = KernelParams::Sigmoid(rng.Uniform(0.05, 0.5),
                                       rng.Uniform(-0.1, 0.1));
        break;
    }

    // Random weighting type.
    const int weighting = 1 + static_cast<int>(rng.Uniform(0.0, 3.0));
    std::vector<double> weights(n);
    for (auto& w : weights) {
      w = weighting == 1   ? 0.7
          : weighting == 2 ? rng.Uniform(0.05, 1.5)
                           : rng.Uniform(-1.0, 1.0);
      if (w == 0.0) w = 0.5;
    }

    EngineOptions options;
    options.kernel = kernel;
    auto engine = Engine::Build(pts, weights, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    data::Matrix queries(12, d);
    for (size_t i = 0; i < queries.rows(); ++i) {
      for (double& v : queries.MutableRow(i)) v = rng.Uniform(-0.1, 1.1);
    }
    std::vector<double> exact(queries.rows());
    for (size_t i = 0; i < queries.rows(); ++i) {
      exact[i] =
          core::ExactAggregate(pts, weights, kernel, queries.Row(i));
    }

    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      util::ThreadPool pool(threads);

      // Random τ around the exact values of this batch.
      const double tau = exact[static_cast<size_t>(
                             rng.Uniform(0.0, 11.99))] *
                         rng.Uniform(0.6, 1.4);
      const auto tkaq = engine.value().TkaqBatch(queries, tau, &pool);
      for (size_t i = 0; i < queries.rows(); ++i) {
        const double noise_floor = 1e-12 * (1.0 + std::abs(exact[i]));
        if (std::abs(exact[i] - tau) <= noise_floor) continue;
        EXPECT_EQ(tkaq[i] != 0, exact[i] > tau)
            << "trial=" << trial << " threads=" << threads << " i=" << i
            << " tau=" << tau << " exact=" << exact[i];
      }

      const auto brute = engine.value().ExactBatch(queries, &pool);
      for (size_t i = 0; i < queries.rows(); ++i) {
        EXPECT_NEAR(brute[i], exact[i], 1e-9 * (1.0 + std::abs(exact[i])))
            << "trial=" << trial << " threads=" << threads << " i=" << i;
      }

      if (weighting != 3) {
        const double eps = rng.Uniform(0.05, 0.4);
        const auto ekaq = engine.value().EkaqBatch(queries, eps, &pool);
        for (size_t i = 0; i < queries.rows(); ++i) {
          EXPECT_LE(std::abs(ekaq[i] - exact[i]),
                    eps * std::abs(exact[i]) + 1e-10)
              << "trial=" << trial << " threads=" << threads << " i=" << i
              << " eps=" << eps;
        }
      }
    }
  }
}

// P7a: the blocked SoA mirror every tree builds (core/simd/soa_block.h)
// must be a bit-exact re-layout — every coordinate and weight read back
// through the blocked accessors equals the permuted source EXACTLY, for
// fuzzed shapes including ragged final blocks and n < kBlockPoints.
TEST(SimdSoaProperty, BlockedLayoutRoundTripsBitExactly) {
  util::Rng rng(20260808);
  for (int trial = 0; trial < 12; ++trial) {
    const size_t d = 1 + static_cast<size_t>(rng.Uniform(0.0, 9.0));
    const size_t n = 1 + static_cast<size_t>(rng.Uniform(0.0, 260.0));
    data::Matrix pts(n, d);
    for (size_t i = 0; i < n; ++i) {
      for (double& v : pts.MutableRow(i)) v = rng.Uniform(-1.0, 1.0);
    }
    std::vector<double> weights(n);
    for (auto& w : weights) w = rng.Uniform(-1.0, 1.0);

    const PropertyCase pc{0, n, d,
                          trial % 2 == 0 ? index::IndexKind::kKdTree
                                         : index::IndexKind::kBallTree,
                          1 + static_cast<size_t>(rng.Uniform(0.0, 31.0)),
                          0, 2};
    const auto tree = TreeForCase(pc, pts, weights);
    const auto& soa = tree->soa();
    ASSERT_EQ(soa.rows(), n) << "trial " << trial;
    ASSERT_EQ(soa.dims(), d) << "trial " << trial;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(soa.WeightAt(i), tree->weights()[i])
          << "trial " << trial << " row " << i;
      for (size_t j = 0; j < d; ++j) {
        ASSERT_EQ(soa.At(i, j), tree->points().Row(i)[j])
            << "trial " << trial << " row " << i << " dim " << j;
      }
    }
  }
}

// P7b: randomised vectorized-vs-brute-force. Under every tier the host
// supports, fuzzed tKAQ/eKAQ/exact queries through the Engine (which
// runs the vectorized leaf path on vector tiers) must agree with plain
// brute-force aggregation: tKAQ exactly outside the noise floor, eKAQ
// within (1±ε), exact within accumulation-order tolerance.
TEST(SimdQueryProperty, VectorizedQueriesMatchBruteForce) {
  namespace simd = core::simd;
  std::vector<simd::Tier> tiers = {simd::Tier::kScalar};
  if (simd::TierSupported(simd::Tier::kAvx2)) {
    tiers.push_back(simd::Tier::kAvx2);
  }
  if (simd::TierSupported(simd::Tier::kAvx512)) {
    tiers.push_back(simd::Tier::kAvx512);
  }
  const simd::Tier saved = simd::ActiveTier();

  util::Rng rng(777);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t d = 2 + static_cast<size_t>(rng.Uniform(0.0, 5.0));
    const size_t n = 150 + static_cast<size_t>(rng.Uniform(0.0, 200.0));
    const data::Matrix pts = data::SampleClustered(n, d, 3, 0.08, rng);
    std::vector<double> weights(n);
    for (auto& w : weights) w = rng.Uniform(0.05, 1.5);

    KernelParams kernel;
    switch (trial % 3) {
      case 0:
        kernel = KernelParams::Gaussian(rng.Uniform(0.5, 8.0));
        break;
      case 1:
        kernel = KernelParams::Laplacian(rng.Uniform(0.5, 5.0));
        break;
      default:
        kernel = KernelParams::Cauchy(rng.Uniform(0.5, 6.0));
        break;
    }

    EngineOptions options;
    options.kernel = kernel;
    options.leaf_capacity = 1 + static_cast<size_t>(rng.Uniform(0.0, 40.0));
    auto engine = Engine::Build(pts, weights, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    for (int query = 0; query < 5; ++query) {
      std::vector<double> q(d);
      for (auto& v : q) v = rng.Uniform(-0.1, 1.1);
      const double exact = core::ExactAggregate(pts, weights, kernel, q);
      const double tau = exact * rng.Uniform(0.6, 1.4);
      const double eps = rng.Uniform(0.05, 0.4);

      for (const simd::Tier tier : tiers) {
        simd::ForceTier(tier);
        EXPECT_NEAR(engine.value().Exact(q), exact,
                    1e-9 * (1.0 + std::abs(exact)))
            << simd::TierName(tier) << " trial=" << trial << " q=" << query;
        const double noise_floor = 1e-12 * (1.0 + std::abs(exact));
        if (std::abs(exact - tau) > noise_floor) {
          EXPECT_EQ(engine.value().Tkaq(q, tau), exact > tau)
              << simd::TierName(tier) << " trial=" << trial << " q=" << query;
        }
        EXPECT_LE(std::abs(engine.value().Ekaq(q, eps) - exact),
                  eps * std::abs(exact) + 1e-10)
            << simd::TierName(tier) << " trial=" << trial << " q=" << query;
      }
      simd::ForceTier(saved);
    }
  }
}

// ---------------------------------------------------------------------
// Auditor coverage: the KARL_AUDIT_BOUNDS runtime auditor must (a) stay
// silent on correct bounds and (b) abort on deliberately broken ones.
// ---------------------------------------------------------------------

// Swaps the real lower/upper bounds — the classic sign error in the
// linear-bound construction the auditor exists to catch.
class InvertedBounds final : public core::BoundFunction {
 public:
  explicit InvertedBounds(std::unique_ptr<core::BoundFunction> inner)
      : inner_(std::move(inner)) {}

  void NodeBounds(const index::TreeIndex& tree, index::NodeId id,
                  const core::QueryContext& ctx, double* lb,
                  double* ub) const override {
    inner_->NodeBounds(tree, id, ctx, ub, lb);  // Swapped outputs.
  }

 private:
  std::unique_ptr<core::BoundFunction> inner_;
};

// Keeps lb <= ub but shifts the interval above the exact aggregate, so
// only the exact-enclosure audit (not the inversion audit) can catch it.
class ShiftedBounds final : public core::BoundFunction {
 public:
  explicit ShiftedBounds(std::unique_ptr<core::BoundFunction> inner)
      : inner_(std::move(inner)) {}

  void NodeBounds(const index::TreeIndex& tree, index::NodeId id,
                  const core::QueryContext& ctx, double* lb,
                  double* ub) const override {
    inner_->NodeBounds(tree, id, ctx, lb, ub);
    const double shift = 10.0 * (1.0 + std::abs(*ub));
    *lb += shift;
    *ub += shift;
  }

 private:
  std::unique_ptr<core::BoundFunction> inner_;
};

struct AuditFixture {
  data::Matrix pts;
  std::vector<double> weights;
  std::unique_ptr<index::TreeIndex> tree;
  KernelParams kernel = KernelParams::Gaussian(4.0);

  AuditFixture() {
    util::Rng rng(7);
    pts = data::SampleClustered(200, 3, 2, 0.08, rng);
    weights.assign(200, 1.0);
    tree = index::KdTree::Build(pts, weights, 16).ValueOrDie();
  }

  core::Evaluator MakeEvaluator(
      std::unique_ptr<core::BoundFunction> bounds) const {
    core::Evaluator::Options options;
    options.audit_bounds = true;
    return core::Evaluator::CreateWithBounds(tree.get(), nullptr, kernel,
                                             options, std::move(bounds))
        .ValueOrDie();
  }
};

TEST(BoundAuditProperty, AuditorSilentOnCorrectBounds) {
  AuditFixture fx;
  auto ev = fx.MakeEvaluator(
      core::MakeBoundFunction(fx.kernel, BoundKind::kKarl).ValueOrDie());
  const std::vector<double> q(3, 0.5);
  const double exact = core::ExactAggregate(fx.pts, fx.weights, fx.kernel, q);
  EXPECT_EQ(ev.QueryThreshold(q, 0.5 * exact), true);
  EXPECT_EQ(ev.QueryThreshold(q, 2.0 * exact), false);
  EXPECT_NEAR(ev.QueryApproximate(q, 0.1), exact, 0.1 * exact + 1e-9);
}

TEST(BoundAuditProperty, AuditorSilentOnTypeThreeEngine) {
  util::Rng rng(11);
  const data::Matrix pts = data::SampleClustered(150, 3, 2, 0.08, rng);
  std::vector<double> weights(150);
  for (auto& w : weights) {
    w = rng.Uniform(-1.0, 1.0);
    if (w == 0.0) w = 0.5;
  }
  EngineOptions options;
  options.kernel = KernelParams::Gaussian(4.0);
  options.audit_bounds = true;
  auto engine = Engine::Build(pts, weights, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_EQ(engine.value().weighting_type(), WeightingType::kTypeIII);
  const std::vector<double> q(3, 0.4);
  const double exact = engine.value().Exact(q);
  EXPECT_EQ(engine.value().Tkaq(q, exact - 0.5), true);
  EXPECT_EQ(engine.value().Tkaq(q, exact + 0.5), false);
}

TEST(BoundAuditDeathTest, AuditorDetectsInvertedBounds) {
  AuditFixture fx;
  auto ev = fx.MakeEvaluator(std::make_unique<InvertedBounds>(
      core::MakeBoundFunction(fx.kernel, BoundKind::kKarl).ValueOrDie()));
  const std::vector<double> q(3, 0.5);
  EXPECT_DEATH((void)ev.QueryThreshold(q, 1.0), "inverted node bounds");
}

TEST(BoundAuditDeathTest, AuditorDetectsBoundsExcludingExact) {
  AuditFixture fx;
  auto ev = fx.MakeEvaluator(std::make_unique<ShiftedBounds>(
      core::MakeBoundFunction(fx.kernel, BoundKind::kKarl).ValueOrDie()));
  const std::vector<double> q(3, 0.5);
  EXPECT_DEATH((void)ev.QueryThreshold(q, 1.0),
               "node bounds exclude the exact aggregate");
}

}  // namespace
}  // namespace karl
