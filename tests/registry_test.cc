// Tests for the model registry subsystem: snapshot round trips over
// mmap, corruption rejection, lazy loading, LRU eviction with pinning,
// and RCU-style hot reload.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_io.h"
#include "util/check.h"
#include "core/karl.h"
#include "data/synthetic.h"
#include "registry/registry.h"
#include "registry/snapshot.h"
#include "telemetry/metrics.h"
#include "util/rng.h"

namespace karl::registry {
namespace {

namespace fs = std::filesystem;

data::Matrix MakePoints(uint64_t seed, size_t rows = 400) {
  util::Rng rng(seed);
  return data::SampleClustered(rows, 4, 3, 0.08, rng);
}

// Type III: mixed-sign weights (positive and negative trees).
std::vector<double> MixedWeights(uint64_t seed, size_t n) {
  util::Rng rng(seed ^ 0x9e3779b9ull);
  std::vector<double> w(n);
  for (auto& x : w) x = rng.Uniform(-1.0, 1.0);
  return w;
}

// Type II: arbitrary positive weights (eKAQ-capable).
std::vector<double> PositiveWeights(uint64_t seed, size_t n) {
  util::Rng rng(seed ^ 0x5bd1e995ull);
  std::vector<double> w(n);
  for (auto& x : w) x = rng.Uniform(0.1, 1.0);
  return w;
}

Engine BuildEngine(const data::Matrix& points,
                   std::span<const double> weights,
                   core::KernelParams kernel,
                   index::IndexKind kind = index::IndexKind::kKdTree) {
  EngineOptions options;
  options.kernel = kernel;
  options.index_kind = kind;
  options.leaf_capacity = 24;
  return Engine::Build(points, weights, options).ValueOrDie();
}

std::vector<double> RandomQuery(util::Rng& rng) {
  std::vector<double> q(4);
  for (auto& v : q) v = rng.Uniform(0.0, 1.0);
  return q;
}

// Queries both engines at sampled points and requires identical answers
// (same permuted data, same traversal order: bit-for-bit).
void ExpectSameAnswers(const Engine& expected, const Engine& actual,
                       uint64_t seed, bool check_ekaq) {
  util::Rng rng(seed);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> q = RandomQuery(rng);
    const double exact = expected.Exact(q);
    EXPECT_DOUBLE_EQ(actual.Exact(q), exact);
    EXPECT_EQ(actual.Tkaq(q, exact + 0.01), expected.Tkaq(q, exact + 0.01));
    EXPECT_EQ(actual.Tkaq(q, exact - 0.01), expected.Tkaq(q, exact - 0.01));
    if (check_ekaq) {
      EXPECT_DOUBLE_EQ(actual.Ekaq(q, 0.05), expected.Ekaq(q, 0.05));
    }
  }
}

// Scoped scratch directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string File(const std::string& leaf) const {
    return (path_ / leaf).string();
  }

 private:
  fs::path path_;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------
// Snapshot format.
// ---------------------------------------------------------------------

TEST(SnapshotTest, KdTypeIIIRoundTripAnswersIdentically) {
  TempDir dir("karl_snap_rt_kd");
  const data::Matrix points = MakePoints(1);
  const std::vector<double> weights = MixedWeights(1, points.rows());
  const Engine original =
      BuildEngine(points, weights, core::KernelParams::Gaussian(3.0));
  EXPECT_EQ(original.weighting_type(), WeightingType::kTypeIII);

  const std::string path = dir.File("m.snap");
  ASSERT_TRUE(WriteSnapshot(path, original).ok());

  auto snapshot = MappedSnapshot::Map(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot.value().weighting(), WeightingType::kTypeIII);
  EXPECT_EQ(snapshot.value().num_trees(), 2u);

  auto attached = AttachEngine(snapshot.value(), nullptr, nullptr);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  EXPECT_EQ(attached.value().weighting_type(), WeightingType::kTypeIII);
  ExpectSameAnswers(original, attached.value(), 7, /*check_ekaq=*/false);
}

TEST(SnapshotTest, BallTypeIIRoundTripAnswersIdentically) {
  TempDir dir("karl_snap_rt_ball");
  const data::Matrix points = MakePoints(2);
  const std::vector<double> weights = PositiveWeights(2, points.rows());
  const Engine original =
      BuildEngine(points, weights, core::KernelParams::Laplacian(1.5),
                  index::IndexKind::kBallTree);
  EXPECT_EQ(original.weighting_type(), WeightingType::kTypeII);

  const std::string path = dir.File("m.snap");
  ASSERT_TRUE(WriteSnapshot(path, original).ok());

  auto snapshot = MappedSnapshot::Map(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot.value().num_trees(), 1u);

  auto attached = AttachEngine(snapshot.value(), nullptr, nullptr);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  ExpectSameAnswers(original, attached.value(), 8, /*check_ekaq=*/true);
}

TEST(SnapshotTest, AllKernelAndIndexVariantsRoundTrip) {
  TempDir dir("karl_snap_variants");
  for (const auto kernel :
       {core::KernelParams::Gaussian(2.0), core::KernelParams::Cauchy(4.0),
        core::KernelParams::Polynomial(0.3, 0.7, 5),
        core::KernelParams::Sigmoid(0.9, -0.4)}) {
    for (const auto kind :
         {index::IndexKind::kKdTree, index::IndexKind::kBallTree}) {
      const data::Matrix points = MakePoints(3, 200);
      const std::vector<double> weights = MixedWeights(3, points.rows());
      const Engine original = BuildEngine(points, weights, kernel, kind);
      const std::string path = dir.File("v.snap");
      ASSERT_TRUE(WriteSnapshot(path, original).ok());
      auto snapshot = MappedSnapshot::Map(path);
      ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
      EXPECT_EQ(snapshot.value().options().kernel.type, kernel.type);
      EXPECT_EQ(snapshot.value().options().index_kind, kind);
      auto attached = AttachEngine(snapshot.value(), nullptr, nullptr);
      ASSERT_TRUE(attached.ok()) << attached.status().ToString();
      util::Rng rng(9);
      const std::vector<double> q = RandomQuery(rng);
      EXPECT_DOUBLE_EQ(attached.value().Exact(q), original.Exact(q));
    }
  }
}

TEST(SnapshotTest, WriteIsDeterministicAndResnapshotIsByteIdentical) {
  TempDir dir("karl_snap_det");
  const data::Matrix points = MakePoints(4);
  const std::vector<double> weights = MixedWeights(4, points.rows());
  const Engine engine =
      BuildEngine(points, weights, core::KernelParams::Gaussian(2.0));

  const std::string a = dir.File("a.snap");
  const std::string b = dir.File("b.snap");
  ASSERT_TRUE(WriteSnapshot(a, engine).ok());
  ASSERT_TRUE(WriteSnapshot(b, engine).ok());
  EXPECT_EQ(ReadFileBytes(a), ReadFileBytes(b));

  // Re-snapshotting an attached engine reproduces the original bytes:
  // the attach path must not perturb any serialized state.
  auto snapshot = MappedSnapshot::Map(a);
  ASSERT_TRUE(snapshot.ok());
  auto attached = AttachEngine(snapshot.value(), nullptr, nullptr);
  ASSERT_TRUE(attached.ok());
  const std::string c = dir.File("c.snap");
  ASSERT_TRUE(WriteSnapshot(c, attached.value()).ok());
  EXPECT_EQ(ReadFileBytes(a), ReadFileBytes(c));
}

TEST(SnapshotTest, RejectsTruncation) {
  TempDir dir("karl_snap_trunc");
  const data::Matrix points = MakePoints(5, 200);
  const std::vector<double> weights = MixedWeights(5, points.rows());
  const Engine engine =
      BuildEngine(points, weights, core::KernelParams::Gaussian(1.0));
  const std::string path = dir.File("m.snap");
  ASSERT_TRUE(WriteSnapshot(path, engine).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), kSnapshotHeaderBytes);

  const std::string cut_path = dir.File("cut.snap");
  for (const size_t cut :
       {size_t{2}, size_t{100}, kSnapshotHeaderBytes, bytes.size() / 2,
        bytes.size() - 1}) {
    WriteFileBytes(cut_path, bytes.substr(0, cut));
    auto mapped = MappedSnapshot::Map(cut_path);
    EXPECT_FALSE(mapped.ok()) << "cut=" << cut;
    // Every failure names the offending file.
    EXPECT_NE(mapped.status().message().find(cut_path), std::string::npos)
        << mapped.status().ToString();
  }
}

TEST(SnapshotTest, RejectsCorruptHeaderFields) {
  TempDir dir("karl_snap_corrupt");
  const data::Matrix points = MakePoints(6, 200);
  const std::vector<double> weights = MixedWeights(6, points.rows());
  const Engine engine =
      BuildEngine(points, weights, core::KernelParams::Gaussian(1.0));
  const std::string path = dir.File("m.snap");
  ASSERT_TRUE(WriteSnapshot(path, engine).ok());
  const std::string bytes = ReadFileBytes(path);
  const std::string bad_path = dir.File("bad.snap");

  // Bad magic.
  std::string bad = bytes;
  bad[0] = static_cast<char>(bad[0] ^ 0xFF);
  WriteFileBytes(bad_path, bad);
  EXPECT_FALSE(MappedSnapshot::Map(bad_path).ok());

  // Wrong version.
  bad = bytes;
  bad[4] = static_cast<char>(0x7F);
  WriteFileBytes(bad_path, bad);
  auto wrong_version = MappedSnapshot::Map(bad_path);
  ASSERT_FALSE(wrong_version.ok());
  EXPECT_NE(wrong_version.status().message().find("version"),
            std::string::npos)
      << wrong_version.status().ToString();

  // Flipped checksum byte.
  bad = bytes;
  bad[kSnapshotChecksumOffset] =
      static_cast<char>(bad[kSnapshotChecksumOffset] ^ 0x01);
  WriteFileBytes(bad_path, bad);
  auto bad_checksum = MappedSnapshot::Map(bad_path);
  ASSERT_FALSE(bad_checksum.ok());
  EXPECT_NE(bad_checksum.status().message().find("checksum"),
            std::string::npos)
      << bad_checksum.status().ToString();

  // Flipped payload byte (middle of the section area).
  bad = bytes;
  bad[bytes.size() / 2] = static_cast<char>(bad[bytes.size() / 2] ^ 0x01);
  WriteFileBytes(bad_path, bad);
  EXPECT_FALSE(MappedSnapshot::Map(bad_path).ok());
}

TEST(SnapshotTest, UnlinkedFileKeepsAnswering) {
  TempDir dir("karl_snap_unlink");
  const data::Matrix points = MakePoints(7);
  const std::vector<double> weights = MixedWeights(7, points.rows());
  const Engine original =
      BuildEngine(points, weights, core::KernelParams::Gaussian(2.0));
  const std::string path = dir.File("m.snap");
  ASSERT_TRUE(WriteSnapshot(path, original).ok());

  auto snapshot = MappedSnapshot::Map(path);
  ASSERT_TRUE(snapshot.ok());
  auto attached = AttachEngine(snapshot.value(), nullptr, nullptr);
  ASSERT_TRUE(attached.ok());

  // POSIX: the mapping survives the unlink until munmap.
  ASSERT_TRUE(fs::remove(path));
  ExpectSameAnswers(original, attached.value(), 11, /*check_ekaq=*/false);
}

TEST(SnapshotTest, MissingFileErrorNamesPath) {
  const std::string path = "/nonexistent/karl/model.snap";
  auto mapped = MappedSnapshot::Map(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), util::StatusCode::kIOError);
  EXPECT_NE(mapped.status().message().find(path), std::string::npos);
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

// Writes a snapshot built from (seed, rows) to `path`; returns the built
// engine for answer comparison.
Engine WriteModel(const std::string& path, uint64_t seed, size_t rows = 400) {
  const data::Matrix points = MakePoints(seed, rows);
  const std::vector<double> weights = MixedWeights(seed, points.rows());
  Engine engine =
      BuildEngine(points, weights, core::KernelParams::Gaussian(2.0));
  KARL_CHECK(WriteSnapshot(path, engine).ok());
  return engine;
}

TEST(RegistryTest, ScansLazilyAndServesNamedModels) {
  TempDir dir("karl_reg_scan");
  const Engine a = WriteModel(dir.File("alpha.snap"), 21);
  const Engine b = WriteModel(dir.File("beta.snap"), 22);

  RegistryOptions options;
  options.default_model = "alpha";
  auto registry = ModelRegistry::Open(dir.File(""), options);
  ASSERT_TRUE(registry.ok()) << registry.status().ToString();
  ModelRegistry& reg = *registry.value();

  // Nothing resident before the first Acquire.
  for (const auto& info : reg.List()) {
    EXPECT_FALSE(info.resident) << info.name;
    EXPECT_GT(info.file_bytes, 0u) << info.name;
  }
  EXPECT_EQ(reg.resident_bytes(), 0u);
  EXPECT_EQ(reg.default_model(), "alpha");

  auto ha = reg.Acquire("");  // Default resolves to alpha.
  ASSERT_TRUE(ha.ok()) << ha.status().ToString();
  auto hb = reg.Acquire("beta");
  ASSERT_TRUE(hb.ok()) << hb.status().ToString();
  EXPECT_TRUE(ha.value()->mmap_backed());
  EXPECT_TRUE(hb.value()->mmap_backed());

  ExpectSameAnswers(a, ha.value()->engine(), 31, /*check_ekaq=*/false);
  ExpectSameAnswers(b, hb.value()->engine(), 32, /*check_ekaq=*/false);

  const auto listed = reg.List();
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_TRUE(listed[0].resident);
  EXPECT_TRUE(listed[1].resident);
  EXPECT_TRUE(listed[0].mmap_backed);
  EXPECT_GT(reg.resident_bytes(), 0u);
}

TEST(RegistryTest, SingleModelIsImplicitDefault) {
  TempDir dir("karl_reg_single");
  WriteModel(dir.File("only.snap"), 23, 200);
  auto registry = ModelRegistry::Open(dir.File(""), RegistryOptions{});
  ASSERT_TRUE(registry.ok());
  EXPECT_EQ(registry.value()->default_model(), "only");
  EXPECT_TRUE(registry.value()->Acquire("").ok());
}

TEST(RegistryTest, MultiModelWithoutDefaultRejectsUnnamedRequests) {
  TempDir dir("karl_reg_nodefault");
  WriteModel(dir.File("a.snap"), 24, 200);
  WriteModel(dir.File("b.snap"), 25, 200);
  auto registry = ModelRegistry::Open(dir.File(""), RegistryOptions{});
  ASSERT_TRUE(registry.ok());
  auto handle = registry.value()->Acquire("");
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(RegistryTest, UnknownModelIsNotFoundAndListsKnownNames) {
  TempDir dir("karl_reg_unknown");
  WriteModel(dir.File("alpha.snap"), 26, 200);
  auto registry = ModelRegistry::Open(dir.File(""), RegistryOptions{});
  ASSERT_TRUE(registry.ok());
  auto handle = registry.value()->Acquire("nope");
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), util::StatusCode::kNotFound);
  EXPECT_NE(handle.status().message().find("alpha"), std::string::npos);
}

TEST(RegistryTest, LoadsLegacyModelFiles) {
  TempDir dir("karl_reg_legacy");
  const data::Matrix points = MakePoints(27, 200);
  const std::vector<double> weights = MixedWeights(27, points.rows());
  core::EngineModel model;
  model.points = points;
  model.weights = weights;
  model.options.kernel = core::KernelParams::Gaussian(2.0);
  model.options.leaf_capacity = 24;
  ASSERT_TRUE(core::SaveEngineModel(dir.File("old.bin"), model).ok());
  const Engine original = BuildEngine(points, weights, model.options.kernel);

  auto registry = ModelRegistry::Open(dir.File(""), RegistryOptions{});
  ASSERT_TRUE(registry.ok());
  auto handle = registry.value()->Acquire("old");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_FALSE(handle.value()->mmap_backed());
  ExpectSameAnswers(original, handle.value()->engine(), 33,
                    /*check_ekaq=*/false);
}

TEST(RegistryTest, SnapshotShadowsLegacyWithSameStem) {
  TempDir dir("karl_reg_shadow");
  const data::Matrix points = MakePoints(28, 200);
  const std::vector<double> weights = MixedWeights(28, points.rows());
  core::EngineModel model;
  model.points = points;
  model.weights = weights;
  model.options.kernel = core::KernelParams::Gaussian(2.0);
  model.options.leaf_capacity = 24;
  ASSERT_TRUE(core::SaveEngineModel(dir.File("m.bin"), model).ok());
  WriteModel(dir.File("m.snap"), 28, 200);

  auto registry = ModelRegistry::Open(dir.File(""), RegistryOptions{});
  ASSERT_TRUE(registry.ok());
  const auto listed = registry.value()->List();
  ASSERT_EQ(listed.size(), 1u);
  auto handle = registry.value()->Acquire("m");
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE(handle.value()->mmap_backed());  // The .snap won.
}

TEST(RegistryTest, CorruptFileErrorNamesPath) {
  TempDir dir("karl_reg_corrupt");
  WriteFileBytes(dir.File("bad.snap"), "KSNPgarbage");
  auto registry = ModelRegistry::Open(dir.File(""), RegistryOptions{});
  ASSERT_TRUE(registry.ok());
  auto handle = registry.value()->Acquire("bad");
  ASSERT_FALSE(handle.ok());
  EXPECT_NE(handle.status().message().find(dir.File("bad.snap")),
            std::string::npos)
      << handle.status().ToString();
}

TEST(RegistryTest, EvictsLruUnderBudgetButNeverPinned) {
  TempDir dir("karl_reg_evict");
  WriteModel(dir.File("a.snap"), 41);
  const Engine b_built = WriteModel(dir.File("b.snap"), 42);
  WriteModel(dir.File("c.snap"), 43);

  // Measure one model's footprint with an unlimited registry.
  uint64_t one_model_bytes = 0;
  {
    auto probe = ModelRegistry::Open(dir.File(""), RegistryOptions{});
    ASSERT_TRUE(probe.ok());
    ASSERT_TRUE(probe.value()->Acquire("a").ok());
    one_model_bytes = probe.value()->resident_bytes();
    ASSERT_GT(one_model_bytes, 0u);
  }

  telemetry::Registry metrics;
  RegistryOptions options;
  options.memory_budget_bytes = one_model_bytes + one_model_bytes / 2;
  options.metrics = &metrics;
  auto registry = ModelRegistry::Open(dir.File(""), options);
  ASSERT_TRUE(registry.ok());
  ModelRegistry& reg = *registry.value();

  // Load a, drop the handle, then load b: a is LRU and unpinned → gone.
  { ASSERT_TRUE(reg.Acquire("a").ok()); }
  auto hb = reg.Acquire("b");
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(reg.evictions(), 1u);
  for (const auto& info : reg.List()) {
    if (info.name == "a") {
      EXPECT_FALSE(info.resident);
    }
    if (info.name == "b") {
      EXPECT_TRUE(info.resident);
    }
  }
  EXPECT_EQ(metrics.GetCounter("karl_model_evictions_total")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("karl_model_loads_total")->value(), 2u);
  EXPECT_GT(metrics.GetGauge("karl_model_resident_bytes")->value(), 0.0);

  // Re-load a while still holding b's handle: b is pinned, so both stay
  // resident even though the budget is exceeded.
  auto ha = reg.Acquire("a");
  ASSERT_TRUE(ha.ok());
  EXPECT_EQ(reg.evictions(), 1u);
  EXPECT_GT(reg.resident_bytes(), options.memory_budget_bytes);

  // Drop b's pin; the next *load* (c) sweeps b out. a survives: its
  // handle is still held, and pinned models are never evicted.
  hb = util::Result<ModelHandle>(ModelHandle());
  auto hc = reg.Acquire("c");
  ASSERT_TRUE(hc.ok());
  EXPECT_EQ(reg.evictions(), 2u);
  for (const auto& info : reg.List()) {
    if (info.name == "a") {
      EXPECT_TRUE(info.resident);
    }
    if (info.name == "b") {
      EXPECT_FALSE(info.resident);
    }
    if (info.name == "c") {
      EXPECT_TRUE(info.resident);
    }
  }

  // The evicted model reloads on demand and answers identically.
  auto hb2 = reg.Acquire("b");
  ASSERT_TRUE(hb2.ok());
  util::Rng rng(44);
  const std::vector<double> q = RandomQuery(rng);
  EXPECT_DOUBLE_EQ(hb2.value()->engine().Exact(q), b_built.Exact(q));
}

TEST(RegistryTest, HotReloadSwapsAtomicallyWhileOldHandlesKeepServing) {
  TempDir dir("karl_reg_reload");
  const Engine v1 = WriteModel(dir.File("m.snap"), 51, 400);

  auto registry = ModelRegistry::Open(dir.File(""), RegistryOptions{});
  ASSERT_TRUE(registry.ok());
  ModelRegistry& reg = *registry.value();

  auto h1 = reg.Acquire("m");
  ASSERT_TRUE(h1.ok());
  util::Rng rng(52);
  const std::vector<double> q = RandomQuery(rng);
  const double v1_answer = h1.value()->engine().Exact(q);
  EXPECT_DOUBLE_EQ(v1_answer, v1.Exact(q));

  // Replace-by-rename with a different model (different row count so
  // the size alone flags the change), then reload.
  const Engine v2 = WriteModel(dir.File("m.snap.tmp"), 53, 300);
  fs::rename(dir.File("m.snap.tmp"), dir.File("m.snap"));
  ASSERT_TRUE(reg.Reload().ok());
  EXPECT_EQ(reg.reloads(), 1u);

  // New acquires see v2; the old pinned handle still answers v1 values
  // off the old (now-replaced) mapping.
  auto h2 = reg.Acquire("m");
  ASSERT_TRUE(h2.ok());
  const double v2_answer = h2.value()->engine().Exact(q);
  EXPECT_DOUBLE_EQ(v2_answer, v2.Exact(q));
  EXPECT_NE(v1_answer, v2_answer);
  EXPECT_DOUBLE_EQ(h1.value()->engine().Exact(q), v1_answer);
}

TEST(RegistryTest, GenerationTracksTheReloadThatLoadedEachModel) {
  TempDir dir("karl_reg_generation");
  WriteModel(dir.File("m.snap"), 71, 300);
  WriteModel(dir.File("n.snap"), 72, 300);

  telemetry::Registry metrics;
  RegistryOptions options;
  options.metrics = &metrics;
  auto registry = ModelRegistry::Open(dir.File(""), options);
  ASSERT_TRUE(registry.ok());
  ModelRegistry& reg = *registry.value();

  ASSERT_TRUE(reg.Acquire("m").ok());
  for (const auto& info : reg.List()) {
    EXPECT_EQ(info.generation, 0u) << info.name;  // Pre-reload epoch.
  }

  // Swap m's file and reload: m's generation moves to the reload count,
  // n (never resident, untouched) stays at its load-time epoch.
  WriteModel(dir.File("m.snap.tmp"), 73, 200);
  fs::rename(dir.File("m.snap.tmp"), dir.File("m.snap"));
  ASSERT_TRUE(reg.Reload().ok());
  ASSERT_TRUE(reg.Acquire("n").ok());
  for (const auto& info : reg.List()) {
    if (info.name == "m") {
      EXPECT_EQ(info.generation, 1u);
    }
    if (info.name == "n") {
      EXPECT_EQ(info.generation, 1u);
    }
  }

  // Labeled per-model twins recorded alongside the global families.
  EXPECT_EQ(metrics
                .GetCounter("karl_model_loads_total",
                            telemetry::LabelSet{{"model", "m"}})
                ->value(),
            2u);
  EXPECT_EQ(metrics
                .GetCounter("karl_model_loads_total",
                            telemetry::LabelSet{{"model", "n"}})
                ->value(),
            1u);
  EXPECT_EQ(metrics.GetCounter("karl_model_loads_total")->value(), 3u);
  EXPECT_GT(metrics
                .GetGauge("karl_model_resident_bytes",
                          telemetry::LabelSet{{"model", "m"}})
                ->value(),
            0.0);
}

TEST(RegistryTest, ReloadAddsNewFilesAndDropsDeletedOnes) {
  TempDir dir("karl_reg_rescan");
  WriteModel(dir.File("a.snap"), 61, 200);
  auto registry = ModelRegistry::Open(dir.File(""), RegistryOptions{});
  ASSERT_TRUE(registry.ok());
  ModelRegistry& reg = *registry.value();
  EXPECT_FALSE(reg.Acquire("c").ok());

  WriteModel(dir.File("c.snap"), 62, 200);
  ASSERT_TRUE(reg.Reload().ok());
  EXPECT_TRUE(reg.Acquire("c").ok());

  ASSERT_TRUE(fs::remove(dir.File("c.snap")));
  ASSERT_TRUE(reg.Reload().ok());
  auto gone = reg.Acquire("c");
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), util::StatusCode::kNotFound);
}

TEST(RegistryTest, AdoptedEnginesServeAndResistEviction) {
  const data::Matrix points = MakePoints(71, 200);
  const std::vector<double> weights = MixedWeights(71, points.rows());
  const Engine external =
      BuildEngine(points, weights, core::KernelParams::Gaussian(2.0));

  RegistryOptions options;
  options.memory_budget_bytes = 1;  // Absurdly tight.
  auto registry = ModelRegistry::Open("", options);
  ASSERT_TRUE(registry.ok());
  ModelRegistry& reg = *registry.value();
  reg.AdoptEngine("local", &external);

  auto handle = reg.Acquire("");  // Sole model → implicit default.
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_FALSE(handle.value()->mmap_backed());
  util::Rng rng(72);
  const std::vector<double> q = RandomQuery(rng);
  EXPECT_DOUBLE_EQ(handle.value()->engine().Exact(q), external.Exact(q));

  // Adopted engines are never evicted, budget notwithstanding.
  EXPECT_EQ(reg.evictions(), 0u);
  const auto listed = reg.List();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_TRUE(listed[0].adopted);
  EXPECT_TRUE(listed[0].resident);
}

TEST(RegistryTest, ExplicitModelFilesRegisterAndReload) {
  TempDir dir("karl_reg_explicit");
  const Engine v1 = WriteModel(dir.File("standalone"), 81, 300);

  auto registry = ModelRegistry::Open("", RegistryOptions{});
  ASSERT_TRUE(registry.ok());
  ModelRegistry& reg = *registry.value();
  ASSERT_TRUE(reg.AddModelFile("solo", dir.File("standalone")).ok());
  EXPECT_FALSE(
      reg.AddModelFile("ghost", dir.File("does-not-exist")).ok());

  auto h1 = reg.Acquire("solo");
  ASSERT_TRUE(h1.ok()) << h1.status().ToString();
  EXPECT_TRUE(h1.value()->mmap_backed());  // Sniffed by magic, not name.
  util::Rng rng(82);
  const std::vector<double> q = RandomQuery(rng);
  EXPECT_DOUBLE_EQ(h1.value()->engine().Exact(q), v1.Exact(q));

  // Swap the file in place; Reload must pick up the change.
  const Engine v2 = WriteModel(dir.File("standalone.tmp"), 83, 200);
  fs::rename(dir.File("standalone.tmp"), dir.File("standalone"));
  ASSERT_TRUE(reg.Reload().ok());
  auto h2 = reg.Acquire("solo");
  ASSERT_TRUE(h2.ok());
  EXPECT_DOUBLE_EQ(h2.value()->engine().Exact(q), v2.Exact(q));
}

TEST(RegistryTest, ConcurrentAcquireQueryReloadEvictStress) {
  TempDir dir("karl_reg_stress");
  WriteModel(dir.File("a.snap"), 91, 200);
  WriteModel(dir.File("b.snap"), 92, 200);
  WriteModel(dir.File("c.snap"), 93, 200);
  // Alternate version of b, swapped in mid-stress by the reload thread.
  WriteModel(dir.File("b_alt"), 94, 150);

  // Budget fits roughly one model: constant eviction churn.
  uint64_t one_model_bytes = 0;
  {
    auto probe = ModelRegistry::Open(dir.File(""), RegistryOptions{});
    ASSERT_TRUE(probe.ok());
    ASSERT_TRUE(probe.value()->Acquire("a").ok());
    one_model_bytes = probe.value()->resident_bytes();
  }
  RegistryOptions options;
  options.memory_budget_bytes = one_model_bytes + one_model_bytes / 4;
  auto registry = ModelRegistry::Open(dir.File(""), options);
  ASSERT_TRUE(registry.ok());
  ModelRegistry& reg = *registry.value();

  std::atomic<int> failures{0};
  const char* names[3] = {"a", "b", "c"};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      util::Rng rng(100 + static_cast<uint64_t>(t));
      for (int iter = 0; iter < 40; ++iter) {
        auto handle = reg.Acquire(names[(t + iter) % 3]);
        if (!handle.ok()) {
          ++failures;
          continue;
        }
        const std::vector<double> q = RandomQuery(rng);
        const double exact = handle.value()->engine().Exact(q);
        if (!std::isfinite(exact)) ++failures;
        handle.value()->engine().Tkaq(q, exact + 0.01);
      }
    });
  }
  std::thread reloader([&] {
    for (int iter = 0; iter < 10; ++iter) {
      if (iter == 5) {
        std::error_code ec;
        fs::rename(dir.File("b_alt"), dir.File("b.snap"), ec);
      }
      if (!reg.Reload().ok()) ++failures;
    }
  });
  for (auto& w : workers) w.join();
  reloader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reg.evictions(), 0u);
}

}  // namespace
}  // namespace karl::registry
