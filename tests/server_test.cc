// Loopback integration tests for the serving layer (src/server/):
// protocol round trips, bit-identical coalesced answers, overload
// shedding, malformed-request handling, and graceful drain. Every test
// talks to a real epoll Server over 127.0.0.1 via server::Client.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/evaluator.h"
#include "core/karl.h"
#include "data/synthetic.h"
#include "registry/registry.h"
#include "registry/snapshot.h"
#include "server/client.h"
#include "server/json.h"
#include "server/protocol.h"
#include "server/server.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/log.h"
#include "util/rng.h"

namespace karl::server {
namespace {

constexpr double kEps = 0.05;
constexpr double kTau = 40.0;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(7);
    points_ = data::SampleClustered(400, 4, 3, 0.08, rng);
    queries_ = data::SampleClustered(64, 4, 3, 0.10, rng);
    EngineOptions options;
    options.kernel = core::KernelParams::Gaussian(3.0);
    options.leaf_capacity = 24;
    auto built = Engine::BuildUniform(points_, 1.0, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    engine_.emplace(std::move(built).ValueOrDie());
  }

  // Starts a server on an ephemeral port with this test's registry.
  void StartServer(size_t max_pending = 1024) {
    ServerOptions options;
    options.max_pending = max_pending;
    StartServerWith(std::move(options));
  }

  // Same, but with caller-supplied observability options.
  void StartServerWith(ServerOptions options) {
    options.port = 0;
    options.threads = 2;
    options.metrics = &registry_;
    auto server = Server::Start(*engine_, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).ValueOrDie();
  }

  // Fresh (removed) temp file path; loggers open in append mode, so a
  // stale file from a previous run would skew line counts.
  static std::string TempPath(const std::string& name) {
    std::string path = ::testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    return path;
  }

  static std::vector<std::string> ReadLines(const std::string& path) {
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  Client Dial() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).ValueOrDie();
  }

  double GaugeValue(const std::string& name) {
    return registry_.GetGauge(name)->value();
  }

  uint64_t CounterValue(const std::string& name) {
    return registry_.GetCounter(name)->value();
  }

  // Spins until `gauge` reaches `at_least` (all queries admitted); the
  // coalescer is paused, so the level cannot drop concurrently.
  void WaitForPendingRows(double at_least) {
    while (GaugeValue("karl_server_pending_rows") < at_least) {
      std::this_thread::yield();
    }
  }

  data::Matrix points_{0, 0};
  data::Matrix queries_{0, 0};
  std::optional<Engine> engine_;
  telemetry::Registry registry_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, SingleQueriesMatchLocalEngineBitExactly) {
  StartServer();
  Client client = Dial();
  for (size_t i = 0; i < 8; ++i) {
    const auto q = queries_.Row(i);
    auto above = client.Tkaq(q, kTau);
    ASSERT_TRUE(above.ok()) << above.status().ToString();
    EXPECT_EQ(above.value(), engine_->Tkaq(q, kTau));

    auto approx = client.Ekaq(q, kEps);
    ASSERT_TRUE(approx.ok()) << approx.status().ToString();
    EXPECT_EQ(approx.value(), engine_->Ekaq(q, kEps));  // Bit-identical.

    auto exact = client.Exact(q);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    EXPECT_EQ(exact.value(), engine_->Exact(q));
  }
}

TEST_F(ServerTest, BatchRequestMatchesLocalBatch) {
  StartServer();
  Client client = Dial();

  auto above = client.TkaqBatch(queries_, kTau);
  ASSERT_TRUE(above.ok()) << above.status().ToString();
  EXPECT_EQ(above.value(), engine_->TkaqBatch(queries_, kTau));

  auto approx = client.EkaqBatch(queries_, kEps);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  EXPECT_EQ(approx.value(), engine_->EkaqBatch(queries_, kEps));

  auto exact = client.ExactBatch(queries_);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_EQ(exact.value(), engine_->ExactBatch(queries_));
}

// The acceptance-criteria test: many concurrent single-query clients,
// dispatched as a handful of coalesced BatchEvaluator calls, must get
// answers bit-identical to the serial Engine loop.
TEST_F(ServerTest, CoalescedConcurrentQueriesAreBitIdenticalToSerial) {
  StartServer();
  const size_t n = 32;

  // Freeze dispatch so every request is admitted into one backlog, then
  // release: the dispatcher sweeps them into large same-(kind,param)
  // groups. The pending-rows gauge says when all n are queued.
  server_->PauseCoalescerForTest();
  std::vector<Client> clients;
  clients.reserve(n);
  for (size_t i = 0; i < n; ++i) clients.push_back(Dial());
  for (size_t i = 0; i < n; ++i) {
    Json request = Json::Object()
                       .Set("op", Json::Str("query"))
                       .Set("kind", Json::Str("ekaq"))
                       .Set("eps", Json::Number(kEps));
    Json q = Json::Array();
    for (const double v : queries_.Row(i)) q.Append(Json::Number(v));
    request.Set("q", std::move(q));
    ASSERT_TRUE(clients[i].SendLine(request.Dump()).ok());
  }
  WaitForPendingRows(static_cast<double>(n));
  server_->ResumeCoalescerForTest();

  for (size_t i = 0; i < n; ++i) {
    auto line = clients[i].ReceiveLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    auto response = Json::Parse(line.value());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const Json* value = response.value().Find("value");
    ASSERT_NE(value, nullptr) << line.value();
    // %.17g round-trips doubles exactly, so bit-identical equality holds
    // across the wire.
    EXPECT_EQ(value->number_value(), engine_->Ekaq(queries_.Row(i), kEps))
        << "query " << i;
  }

  // All n queries were answered by fewer dispatch groups (coalescing
  // actually happened, rather than n single-row batches).
  EXPECT_EQ(CounterValue("karl_server_queries_total"), n);
  EXPECT_LT(CounterValue("karl_server_batches_total"), n);
}

TEST_F(ServerTest, OverloadShedsWithExplicitErrorAndBoundedQueue) {
  StartServer(/*max_pending=*/4);
  server_->PauseCoalescerForTest();

  Client client = Dial();
  const size_t total = 10;
  // One write for the whole burst: the loopback delivers it as one
  // buffer, so the event loop makes all ten admission decisions before
  // any response can reach the client — deterministic 4-admitted/6-shed
  // regardless of scheduling.
  std::string burst;
  for (size_t i = 0; i < total; ++i) {
    Json request = Json::Object()
                       .Set("op", Json::Str("query"))
                       .Set("kind", Json::Str("exact"))
                       .Set("id", Json::Str("q" + std::to_string(i)));
    Json q = Json::Array();
    for (const double v : queries_.Row(i)) q.Append(Json::Number(v));
    request.Set("q", std::move(q));
    burst += request.Dump() + "\n";
  }
  ASSERT_TRUE(client.SendLine(burst).ok());

  // First 4 fill the queue; 6 shed immediately. Collect all 10 responses
  // (order mixes shed errors and, after resume, the admitted answers).
  size_t overloaded = 0, answered = 0;
  std::vector<std::string> lines;
  for (size_t i = 0; i < total; ++i) {
    if (i == 0) {
      // The shed responses arrive while the dispatcher is still paused
      // — admission stays bounded without dispatch making progress.
      auto first = client.ReceiveLine();
      ASSERT_TRUE(first.ok()) << first.status().ToString();
      lines.push_back(first.value());
      server_->ResumeCoalescerForTest();
      continue;
    }
    auto line = client.ReceiveLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    lines.push_back(line.value());
  }
  for (const std::string& text : lines) {
    auto response = Json::Parse(text);
    ASSERT_TRUE(response.ok()) << text;
    const Json* error = response.value().Find("error");
    if (error != nullptr) {
      EXPECT_EQ(error->string_value(), "overloaded") << text;
      ++overloaded;
    } else {
      const Json* id = response.value().Find("id");
      ASSERT_NE(id, nullptr) << text;
      const size_t index = std::stoul(id->string_value().substr(1));
      const Json* value = response.value().Find("value");
      ASSERT_NE(value, nullptr) << text;
      EXPECT_EQ(value->number_value(), engine_->Exact(queries_.Row(index)));
      ++answered;
    }
  }
  EXPECT_EQ(overloaded, 6u);
  EXPECT_EQ(answered, 4u);
  EXPECT_EQ(CounterValue("karl_server_overload_total"), 6u);
}

TEST_F(ServerTest, MalformedRequestsAreRejectedWithoutKillingConnection) {
  StartServer();
  Client client = Dial();
  const std::vector<std::string> bad = {
      "this is not json",
      "{\"op\":\"launch\"}",
      "{\"op\":\"query\",\"kind\":\"tkaq\",\"q\":[1,2,3,4]}",  // No tau.
      "{\"op\":\"query\",\"kind\":\"ekaq\",\"eps\":-1,\"q\":[1,2,3,4]}",
      "{\"op\":\"query\",\"kind\":\"exact\",\"q\":[1,2]}",  // Dim mismatch.
      "{\"op\":\"query\",\"kind\":\"exact\",\"q\":[]}",
      "{\"op\":\"batch\",\"kind\":\"exact\",\"queries\":[[1,2,3,4],[1,2]]}",
  };
  for (const std::string& line : bad) {
    ASSERT_TRUE(client.SendLine(line).ok());
    auto response = client.ReceiveLine();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    auto parsed = Json::Parse(response.value());
    ASSERT_TRUE(parsed.ok()) << response.value();
    const Json* error = parsed.value().Find("error");
    ASSERT_NE(error, nullptr) << response.value();
    EXPECT_EQ(error->string_value(), "bad_request") << line;
  }
  // The connection survived all of it and still answers queries.
  auto exact = client.Exact(queries_.Row(0));
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_EQ(exact.value(), engine_->Exact(queries_.Row(0)));
  EXPECT_EQ(CounterValue("karl_server_bad_request_total"), bad.size());
}

TEST_F(ServerTest, OversizedLineIsRejectedAndConnectionClosed) {
  ServerOptions options;
  options.port = 0;
  options.threads = 2;
  options.max_line_bytes = 256;
  options.metrics = &registry_;
  auto server = Server::Start(*engine_, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  server_ = std::move(server).ValueOrDie();

  Client client = Dial();
  std::string huge(1024, 'x');
  ASSERT_TRUE(client.SendLine(huge).ok());
  auto response = client.ReceiveLine();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response.value().find("bad_request"), std::string::npos);
  // Server closes after the error: next read sees EOF.
  auto eof = client.ReceiveLine();
  EXPECT_FALSE(eof.ok());
}

TEST_F(ServerTest, GracefulShutdownDrainsAdmittedWork) {
  StartServer();
  server_->PauseCoalescerForTest();

  Client client = Dial();
  const size_t n = 8;
  for (size_t i = 0; i < n; ++i) {
    Json request = Json::Object()
                       .Set("op", Json::Str("query"))
                       .Set("kind", Json::Str("ekaq"))
                       .Set("eps", Json::Number(kEps))
                       .Set("id", Json::Str(std::to_string(i)));
    Json q = Json::Array();
    for (const double v : queries_.Row(i)) q.Append(Json::Number(v));
    request.Set("q", std::move(q));
    ASSERT_TRUE(client.SendLine(request.Dump()).ok());
  }
  WaitForPendingRows(static_cast<double>(n));

  // Shutdown with 8 admitted-but-undispatched queries: every one must
  // still be answered (BeginDrain resumes the paused dispatcher).
  server_->Shutdown();
  size_t received = 0;
  for (size_t i = 0; i < n; ++i) {
    auto line = client.ReceiveLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    auto response = Json::Parse(line.value());
    ASSERT_TRUE(response.ok()) << line.value();
    const Json* id = response.value().Find("id");
    ASSERT_NE(id, nullptr) << line.value();
    const size_t index = std::stoul(id->string_value());
    const Json* value = response.value().Find("value");
    ASSERT_NE(value, nullptr) << line.value();
    EXPECT_EQ(value->number_value(), engine_->Ekaq(queries_.Row(index), kEps));
    ++received;
  }
  EXPECT_EQ(received, n);
  // After the last response the server closes the connection and Wait()
  // returns: the drain completed.
  auto eof = client.ReceiveLine();
  EXPECT_FALSE(eof.ok());
  server_->Wait();
}

TEST_F(ServerTest, QueriesDuringDrainAreRefusedAsShuttingDown) {
  StartServer();
  server_->PauseCoalescerForTest();
  Client holder = Dial();
  Json request = Json::Object()
                     .Set("op", Json::Str("query"))
                     .Set("kind", Json::Str("exact"));
  Json q = Json::Array();
  for (const double v : queries_.Row(0)) q.Append(Json::Number(v));
  request.Set("q", std::move(q));
  ASSERT_TRUE(holder.SendLine(request.Dump()).ok());
  WaitForPendingRows(1.0);

  // A second connection dialed before Shutdown stays connected during
  // the drain, but its new queries are refused.
  Client late = Dial();
  server_->Shutdown();
  auto health = late.Health();
  if (health.ok()) {
    EXPECT_EQ(health.value(), "draining");
  }  // Else the drain already closed the connection — also a valid race.

  auto answer = holder.ReceiveLine();
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_NE(answer.value().find("\"value\""), std::string::npos);
  server_->Wait();
}

TEST_F(ServerTest, HealthAndMetricsRoundTrip) {
  StartServer();
  Client client = Dial();
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value(), "serving");

  ASSERT_TRUE(client.Exact(queries_.Row(0)).ok());
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics.value().find("karl_server_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics.value().find("karl_server_batches_total"),
            std::string::npos);
  // Satellite: the pool exports saturation gauges once attached.
  EXPECT_NE(metrics.value().find("karl_pool_queue_depth"), std::string::npos);
  EXPECT_NE(metrics.value().find("karl_pool_active_workers"),
            std::string::npos);
}

TEST_F(ServerTest, EkaqOnTypeThreeWeightsIsRejectedUpFront) {
  util::Rng rng(11);
  std::vector<double> weights(points_.rows());
  for (auto& w : weights) w = rng.Uniform(-1.0, 1.0);  // Mixed signs.
  EngineOptions options;
  options.kernel = core::KernelParams::Gaussian(3.0);
  auto mixed = Engine::Build(points_, weights, options);
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  ASSERT_EQ(mixed.value().weighting_type(), WeightingType::kTypeIII);

  ServerOptions server_options;
  server_options.port = 0;
  server_options.threads = 2;
  server_options.metrics = &registry_;
  auto server = Server::Start(mixed.value(), server_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  server_ = std::move(server).ValueOrDie();

  Client client = Dial();
  auto approx = client.Ekaq(queries_.Row(0), kEps);
  EXPECT_FALSE(approx.ok());
  EXPECT_NE(approx.status().ToString().find("bad_request"),
            std::string::npos);
  // TKAQ still works on Type III.
  auto above = client.Tkaq(queries_.Row(0), 0.0);
  ASSERT_TRUE(above.ok()) << above.status().ToString();
  EXPECT_EQ(above.value(), mixed.value().Tkaq(queries_.Row(0), 0.0));
}

// Tentpole acceptance: every admitted request lands in the flight
// recorder exactly once, with a stage breakdown whose sum nests inside
// the request's own latency window, and the access log agrees.
TEST_F(ServerTest, FlightRecorderSeesEveryAdmittedRequestExactlyOnce) {
  const std::string access_path = TempPath("server_access.ndjson");
  util::Logger::Options access_options;
  access_options.ndjson = true;
  auto access_log = util::Logger::Open(access_path, access_options);
  ASSERT_TRUE(access_log.ok()) << access_log.status().ToString();

  ServerOptions options;
  options.access_log = access_log.value().get();
  StartServerWith(std::move(options));

  Client client = Dial();
  const size_t singles = 5;
  for (size_t i = 0; i < singles; ++i) {
    Json request = Json::Object()
                       .Set("op", Json::Str("query"))
                       .Set("kind", Json::Str("ekaq"))
                       .Set("eps", Json::Number(kEps))
                       .Set("id", Json::Str("s" + std::to_string(i)));
    Json q = Json::Array();
    for (const double v : queries_.Row(i)) q.Append(Json::Number(v));
    request.Set("q", std::move(q));
    ASSERT_TRUE(client.SendLine(request.Dump()).ok());
    auto line = client.ReceiveLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    EXPECT_NE(line.value().find("\"value\""), std::string::npos);
  }
  Json batch = Json::Object()
                   .Set("op", Json::Str("batch"))
                   .Set("kind", Json::Str("exact"))
                   .Set("id", Json::Str("b0"));
  Json rows = Json::Array();
  for (size_t i = 0; i < 3; ++i) {
    Json q = Json::Array();
    for (const double v : queries_.Row(i)) q.Append(Json::Number(v));
    rows.Append(std::move(q));
  }
  batch.Set("queries", std::move(rows));
  ASSERT_TRUE(client.SendLine(batch.Dump()).ok());
  ASSERT_TRUE(client.ReceiveLine().ok());

  // All six completions were finished on the event-loop thread before
  // it could even frame this statusz request, so the snapshot is
  // complete by construction — no sleep needed.
  auto statusz = client.Statusz();
  ASSERT_TRUE(statusz.ok()) << statusz.status().ToString();
  auto parsed = Json::Parse(statusz.value());
  ASSERT_TRUE(parsed.ok()) << statusz.value();
  const Json* recorder = parsed.value().Find("flight_recorder");
  ASSERT_NE(recorder, nullptr) << statusz.value();
  EXPECT_EQ(recorder->Find("total_recorded")->number_value(),
            static_cast<double>(singles + 1));
  const Json* requests = recorder->Find("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_EQ(requests->items().size(), singles + 1);

  static const char* kStages[] = {
      "read_us",          "parse_us", "queue_wait_us", "coalesce_wait_us",
      "eval_us",          "serialize_us", "write_us"};
  std::map<std::string, double> total_by_id;
  for (const Json& entry : requests->items()) {
    const Json* id = entry.Find("id");
    ASSERT_NE(id, nullptr);
    ASSERT_EQ(total_by_id.count(id->string_value()), 0u)
        << "duplicate flight record for " << id->string_value();
    EXPECT_TRUE(entry.Find("ok")->bool_value());
    ASSERT_NE(entry.Find("peer"), nullptr);
    EXPECT_NE(entry.Find("peer")->string_value().find("127.0.0.1:"),
              std::string::npos);
    double stage_sum = 0.0;
    for (const char* stage : kStages) {
      const Json* v = entry.Find(stage);
      ASSERT_NE(v, nullptr) << stage;
      stage_sum += v->number_value();
    }
    const double total = entry.Find("total_us")->number_value();
    EXPECT_GT(total, 0.0);
    // The seven stages are disjoint sub-windows of [first byte read,
    // response written], so their sum cannot exceed the total (the
    // dispatcher doorbell gap absorbs the remainder).
    EXPECT_LE(stage_sum, total + 1.0) << id->string_value();
    total_by_id[id->string_value()] = total;
  }
  for (size_t i = 0; i < singles; ++i) {
    const std::string id = "s" + std::to_string(i);
    ASSERT_EQ(total_by_id.count(id), 1u) << id;
  }
  ASSERT_EQ(total_by_id.count("b0"), 1u);
  const Json* b0 = nullptr;
  for (const Json& entry : requests->items()) {
    if (entry.Find("id")->string_value() == "b0") b0 = &entry;
  }
  ASSERT_NE(b0, nullptr);
  EXPECT_EQ(b0->Find("kind")->string_value(), "exact");
  EXPECT_TRUE(b0->Find("batch")->bool_value());
  EXPECT_EQ(b0->Find("rows")->number_value(), 3.0);

  EXPECT_EQ(server_->flight_recorder().total_recorded(), singles + 1);

  // The access log saw the same six requests with the same totals.
  server_->Shutdown();
  server_->Wait();
  server_.reset();  // Options reference the local logger.
  const auto lines = ReadLines(access_path);
  size_t logged = 0;
  for (const std::string& line : lines) {
    auto log_entry = Json::Parse(line);
    ASSERT_TRUE(log_entry.ok()) << line;
    if (log_entry.value().Find("event")->string_value() != "request") {
      continue;
    }
    ++logged;
    const std::string id = log_entry.value().Find("id")->string_value();
    ASSERT_EQ(total_by_id.count(id), 1u) << id;
    EXPECT_EQ(log_entry.value().Find("total_us")->number_value(),
              total_by_id[id])
        << id;
  }
  EXPECT_EQ(logged, singles + 1);
}

TEST_F(ServerTest, StatuszReportsStageHistogramsAndUptime) {
  StartServer();
  Client client = Dial();
  const size_t n = 4;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(client.Exact(queries_.Row(i)).ok());
  }
  auto statusz = client.Statusz();
  ASSERT_TRUE(statusz.ok()) << statusz.status().ToString();
  auto parsed = Json::Parse(statusz.value());
  ASSERT_TRUE(parsed.ok()) << statusz.value();
  const Json& root = parsed.value();
  ASSERT_NE(root.Find("uptime_s"), nullptr);
  EXPECT_GE(root.Find("uptime_s")->number_value(), 0.0);
  EXPECT_EQ(root.Find("port")->number_value(),
            static_cast<double>(server_->port()));
  const Json* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  const Json* requests_total = counters->Find("karl_server_requests_total");
  ASSERT_NE(requests_total, nullptr);
  EXPECT_GE(requests_total->number_value(), static_cast<double>(n));

  const Json* stages = root.Find("stages");
  ASSERT_NE(stages, nullptr);
  for (const char* stage : {"read", "parse", "queue_wait", "coalesce_wait",
                            "eval", "serialize", "write", "total"}) {
    const Json* entry = stages->Find(stage);
    ASSERT_NE(entry, nullptr) << stage;
    // Exactly the admitted queries: health/metrics/statusz ops never
    // touch the stage histograms.
    EXPECT_EQ(entry->Find("count")->number_value(), static_cast<double>(n))
        << stage;
    EXPECT_GE(entry->Find("p95_us")->number_value(),
              entry->Find("p50_us")->number_value())
        << stage;
  }
  EXPECT_GT(stages->Find("eval")->Find("sum_us")->number_value(), 0.0);
  EXPECT_GE(stages->Find("total")->Find("sum_us")->number_value(),
            stages->Find("eval")->Find("sum_us")->number_value());
}

// Tentpole acceptance: with a tracer attached, each request renders as
// one flow — started inside req/parse on the event-loop thread, stepped
// on the dispatcher/worker threads, ended inside req/write back on the
// event loop — so Perfetto draws a connected arrow lane per request.
TEST_F(ServerTest, TraceFlowEventsLinkRequestsAcrossThreads) {
  telemetry::TraceRecorder recorder(1u << 16);
  ServerOptions options;
  options.tracer = &recorder;
  StartServerWith(std::move(options));

  Client client = Dial();
  const size_t n = 4;
  for (size_t i = 0; i < n; ++i) {
    auto exact = client.Exact(queries_.Row(i));
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  }
  // Drain before reading the trace: the req/write span of the last
  // request is emitted after its response is flushed.
  server_->Shutdown();
  server_->Wait();
  server_.reset();  // Options reference the local recorder.

  auto trace = Json::Parse(recorder.ToJson());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  const Json* events = trace.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_NE(trace.value().Find("droppedEvents"), nullptr);
  EXPECT_EQ(trace.value().Find("droppedEvents")->number_value(), 0.0);

  struct Flow {
    int starts = 0, steps = 0, ends = 0;
    double start_tid = -1.0;
    std::set<double> step_tids;
  };
  std::map<double, Flow> flows;
  std::set<std::string> spans;
  for (const Json& event : events->items()) {
    const std::string phase = event.Find("ph")->string_value();
    if (phase == "X") {
      spans.insert(event.Find("name")->string_value());
      continue;
    }
    if (phase != "s" && phase != "t" && phase != "f") continue;
    // Perfetto matches flows by (cat, name, id).
    EXPECT_EQ(event.Find("cat")->string_value(), "req");
    EXPECT_EQ(event.Find("name")->string_value(), "req");
    Flow& flow = flows[event.Find("id")->number_value()];
    const double tid = event.Find("tid")->number_value();
    if (phase == "s") {
      ++flow.starts;
      flow.start_tid = tid;
    } else if (phase == "t") {
      ++flow.steps;
      flow.step_tids.insert(tid);
    } else {
      ++flow.ends;
      const Json* bp = event.Find("bp");
      ASSERT_NE(bp, nullptr);
      EXPECT_EQ(bp->string_value(), "e");  // Binds to enclosing slice.
    }
  }

  EXPECT_EQ(flows.size(), n);
  for (const auto& [id, flow] : flows) {
    EXPECT_EQ(flow.starts, 1) << "flow " << id;
    EXPECT_EQ(flow.ends, 1) << "flow " << id;
    EXPECT_GE(flow.steps, 1) << "flow " << id;
    bool crossed_threads = false;
    for (const double tid : flow.step_tids) {
      crossed_threads |= tid != flow.start_tid;
    }
    EXPECT_TRUE(crossed_threads) << "flow " << id;
  }
  for (const char* span : {"req/read", "req/parse", "grp/dispatch",
                           "grp/eval", "req/eval_row", "grp/serialize",
                           "req/write"}) {
    EXPECT_EQ(spans.count(span), 1u) << span;
  }
}

TEST_F(ServerTest, SlowQueryThresholdEmitsWarnWithStageBreakdown) {
  const std::string log_path = TempPath("server_slow.log");
  auto logger = util::Logger::Open(log_path, util::Logger::Options{});
  ASSERT_TRUE(logger.ok()) << logger.status().ToString();

  ServerOptions options;
  options.logger = logger.value().get();
  options.slow_query_us = 1;  // Loopback latency always crosses 1us.
  StartServerWith(std::move(options));

  Client client = Dial();
  ASSERT_TRUE(client.Exact(queries_.Row(0)).ok());
  server_->Shutdown();
  server_->Wait();
  server_.reset();  // Options reference the local logger.

  bool found = false;
  for (const std::string& line : ReadLines(log_path)) {
    if (line.find("slow_query") == std::string::npos) continue;
    found = true;
    EXPECT_NE(line.find("WARN"), std::string::npos) << line;
    EXPECT_NE(line.find("kind=\"exact\""), std::string::npos) << line;
    EXPECT_NE(line.find("eval_us="), std::string::npos) << line;
    EXPECT_NE(line.find("total_us="), std::string::npos) << line;
    EXPECT_NE(line.find("threshold_us=1"), std::string::npos) << line;
  }
  EXPECT_TRUE(found);
}

TEST(ServerJsonTest, ParseRejectsGarbageAndRoundTripsValues) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("{}extra").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1e999}").ok());  // Non-finite.
  EXPECT_FALSE(Json::Parse("nulll").ok());

  auto parsed = Json::Parse(
      "{\"s\":\"a\\u00e9\\n\",\"n\":-1.25e2,\"b\":true,\"l\":[1,null]}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& root = parsed.value();
  EXPECT_EQ(root.Find("s")->string_value(), "a\xc3\xa9\n");
  EXPECT_EQ(root.Find("n")->number_value(), -125.0);
  EXPECT_TRUE(root.Find("b")->bool_value());
  EXPECT_EQ(root.Find("l")->items().size(), 2u);

  // Dump -> Parse round-trips doubles bit-exactly (%.17g).
  const double tricky = 0.1 + 0.2;
  Json value = Json::Object().Set("x", Json::Number(tricky));
  auto back = Json::Parse(value.Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().Find("x")->number_value(), tricky);
}

TEST(ServerProtocolTest, ParseRequestValidates) {
  EXPECT_TRUE(ParseRequest("{\"op\":\"health\"}").ok());
  EXPECT_FALSE(ParseRequest("{\"kind\":\"tkaq\"}").ok());  // No op.
  EXPECT_FALSE(
      ParseRequest("{\"op\":\"query\",\"kind\":\"tkaq\",\"q\":[1]}").ok());
  EXPECT_FALSE(
      ParseRequest(
          "{\"op\":\"query\",\"kind\":\"ekaq\",\"eps\":0,\"q\":[1]}")
          .ok());

  auto request = ParseRequest(
      "{\"op\":\"batch\",\"kind\":\"tkaq\",\"tau\":2,"
      "\"queries\":[[1,2],[3,4]],\"id\":\"z\"}");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.value().op, Request::Op::kBatch);
  EXPECT_EQ(request.value().kind, QueryKind::kTkaq);
  EXPECT_EQ(request.value().param, 2.0);
  EXPECT_EQ(request.value().queries.rows(), 2u);
  EXPECT_EQ(request.value().queries.cols(), 2u);
  EXPECT_EQ(request.value().id, "z");
}


// ---------------------------------------------------------------------------
// HTTP admin plane (PR 7 tentpole). The admin listener speaks plain
// HTTP/1.1 with Connection: close, so a raw socket that sends one
// request and reads to EOF is a complete client.

std::string HttpFetch(int port, const std::string& raw_request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < raw_request.size()) {
    const ssize_t n = ::send(fd, raw_request.data() + sent,
                             raw_request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string HttpGet(int port, const std::string& target) {
  return HttpFetch(port, "GET " + target + " HTTP/1.1\r\nHost: karl\r\n\r\n");
}

TEST_F(ServerTest, AdminEndpointsServeUnderConcurrentTraffic) {
  ServerOptions options;
  options.admin_port = 0;  // Ephemeral.
  StartServerWith(std::move(options));
  const int admin_port = server_->admin_port();
  ASSERT_GT(admin_port, 0);

  // Keep query traffic in flight on the data plane while scraping.
  std::atomic<bool> stop{false};
  std::thread traffic([this, &stop] {
    auto client = Client::Connect("127.0.0.1", server_->port());
    if (!client.ok()) return;
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)client.value().Exact(queries_.Row(i++ % queries_.rows()));
    }
  });

  const std::string health = HttpGet(admin_port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos) << health;
  EXPECT_NE(health.find("serving"), std::string::npos) << health;

  const std::string metrics = HttpGet(admin_port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("karl_server_requests_total"), std::string::npos);
  // Rolling stage histograms export cumulative + windowed twins...
  EXPECT_NE(metrics.find("karl_server_total_us{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("karl_server_total_us_window60s"),
            std::string::npos);
  // ...and the build-info gauge carries its labels (satellite 2).
  EXPECT_NE(metrics.find("karl_build_info{version="), std::string::npos);

  const std::string statusz = HttpGet(admin_port, "/statusz");
  EXPECT_NE(statusz.find("HTTP/1.1 200"), std::string::npos);
  const size_t statusz_body = statusz.find("\r\n\r\n");
  ASSERT_NE(statusz_body, std::string::npos);
  auto statusz_json = Json::Parse(statusz.substr(statusz_body + 4));
  ASSERT_TRUE(statusz_json.ok()) << statusz.substr(statusz_body + 4);
  EXPECT_NE(statusz.find("\"window60s\""), std::string::npos);

  const std::string varz = HttpGet(admin_port, "/varz");
  EXPECT_NE(varz.find("HTTP/1.1 200"), std::string::npos);
  const size_t varz_body = varz.find("\r\n\r\n");
  ASSERT_NE(varz_body, std::string::npos);
  auto varz_json = Json::Parse(varz.substr(varz_body + 4));
  ASSERT_TRUE(varz_json.ok()) << varz.substr(varz_body + 4);
  EXPECT_NE(varz.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(varz.find("\"model\""), std::string::npos);

  const std::string flightz = HttpGet(admin_port, "/flightz");
  EXPECT_NE(flightz.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(flightz.find("application/x-ndjson"), std::string::npos);

  stop.store(true, std::memory_order_relaxed);
  traffic.join();
}

TEST_F(ServerTest, AdminRejectsUnknownPathWrongMethodAndOversizedHead) {
  ServerOptions options;
  options.admin_port = 0;
  StartServerWith(std::move(options));
  const int admin_port = server_->admin_port();
  ASSERT_GT(admin_port, 0);

  const std::string missing = HttpGet(admin_port, "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos) << missing;
  // The 404 body lists the registered paths, self-documenting the plane.
  EXPECT_NE(missing.find("/metrics"), std::string::npos) << missing;

  const std::string post = HttpFetch(
      admin_port, "POST /metrics HTTP/1.1\r\nHost: karl\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos) << post;
  EXPECT_NE(post.find("Allow: GET"), std::string::npos) << post;

  // A request head larger than the admin cap is refused, not buffered.
  const std::string oversized = HttpFetch(
      admin_port, "GET /healthz HTTP/1.1\r\nX-Pad: " +
                      std::string(16 * 1024, 'x') + "\r\n\r\n");
  EXPECT_NE(oversized.find("HTTP/1.1 431"), std::string::npos) << oversized;

  // The plane survives all three rejections.
  EXPECT_NE(HttpGet(admin_port, "/healthz").find("HTTP/1.1 200"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// EXPLAIN op (PR 7 tentpole): the profile rides the normal protocol and
// reconciles with what a local evaluator run reports.

TEST_F(ServerTest, ExplainQueryReturnsProfileReconcilingWithLocalStats) {
  ServerOptions options;
  options.admin_port = 0;
  StartServerWith(std::move(options));
  Client client = Dial();

  const auto q = queries_.Row(0);
  Json request = Json::Object()
                     .Set("op", Json::Str("explain"))
                     .Set("kind", Json::Str("tkaq"))
                     .Set("tau", Json::Number(kTau))
                     .Set("id", Json::Str("e0"));
  Json row = Json::Array();
  for (const double v : q) row.Append(Json::Number(v));
  request.Set("q", std::move(row));
  ASSERT_TRUE(client.SendLine(request.Dump()).ok());
  auto line = client.ReceiveLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  auto response = Json::Parse(line.value());
  ASSERT_TRUE(response.ok()) << line.value();

  const Json* above = response.value().Find("above");
  ASSERT_NE(above, nullptr) << line.value();
  EXPECT_EQ(above->bool_value(), engine_->Tkaq(q, kTau));

  const Json* explain = response.value().Find("explain");
  ASSERT_NE(explain, nullptr) << line.value();
  // The server's profile must agree with a local run of the very same
  // deterministic traversal.
  core::EvalStats stats;
  engine_->evaluator().QueryThreshold(q, kTau, &stats);
  const Json* iterations = explain->Find("iterations");
  const Json* expanded = explain->Find("nodes_expanded");
  const Json* kernel_evals = explain->Find("kernel_evals");
  ASSERT_NE(iterations, nullptr);
  ASSERT_NE(expanded, nullptr);
  ASSERT_NE(kernel_evals, nullptr);
  EXPECT_EQ(static_cast<size_t>(iterations->number_value()),
            stats.iterations);
  EXPECT_EQ(static_cast<size_t>(expanded->number_value()),
            stats.nodes_expanded);
  EXPECT_EQ(static_cast<size_t>(kernel_evals->number_value()),
            stats.kernel_evals);
  const Json* levels = explain->Find("levels");
  ASSERT_NE(levels, nullptr);
  EXPECT_FALSE(levels->items().empty());
  const Json* timeline = explain->Find("timeline");
  ASSERT_NE(timeline, nullptr);
  EXPECT_FALSE(timeline->items().empty());

  // ekaq explain: the profiled answer is still the bit-identical value.
  Json ekaq = Json::Object()
                  .Set("op", Json::Str("explain"))
                  .Set("kind", Json::Str("ekaq"))
                  .Set("eps", Json::Number(kEps))
                  .Set("id", Json::Str("e1"));
  Json row2 = Json::Array();
  for (const double v : q) row2.Append(Json::Number(v));
  ekaq.Set("q", std::move(row2));
  ASSERT_TRUE(client.SendLine(ekaq.Dump()).ok());
  auto line2 = client.ReceiveLine();
  ASSERT_TRUE(line2.ok()) << line2.status().ToString();
  auto response2 = Json::Parse(line2.value());
  ASSERT_TRUE(response2.ok()) << line2.value();
  const Json* value = response2.value().Find("value");
  ASSERT_NE(value, nullptr) << line2.value();
  EXPECT_EQ(value->number_value(), engine_->Ekaq(q, kEps));

  // Both explains landed in the admin ring, newest first.
  const std::string explainz =
      HttpGet(server_->admin_port(), "/explainz?last=8");
  EXPECT_NE(explainz.find("HTTP/1.1 200"), std::string::npos);
  const size_t body = explainz.find("\r\n\r\n");
  ASSERT_NE(body, std::string::npos);
  auto parsed = Json::Parse(explainz.substr(body + 4));
  ASSERT_TRUE(parsed.ok()) << explainz.substr(body + 4);
  EXPECT_NE(explainz.find("\"explains\""), std::string::npos);
  EXPECT_NE(explainz.find("\"e0\""), std::string::npos);
  EXPECT_NE(explainz.find("\"e1\""), std::string::npos);
  EXPECT_NE(explainz.find("\"kernel_evals\""), std::string::npos);
}

TEST_F(ServerTest, ExplainOnExactKindIsRejectedUpFront) {
  StartServer();
  Client client = Dial();
  Json request = Json::Object()
                     .Set("op", Json::Str("explain"))
                     .Set("kind", Json::Str("exact"));
  Json row = Json::Array();
  for (const double v : queries_.Row(0)) row.Append(Json::Number(v));
  request.Set("q", std::move(row));
  ASSERT_TRUE(client.SendLine(request.Dump()).ok());
  auto line = client.ReceiveLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_NE(line.value().find("bad_request"), std::string::npos)
      << line.value();
}

// Satellite 3: shed requests are attributed in the access log with peer
// and an explicit disposition, alongside the admitted records.
TEST_F(ServerTest, AccessLogAttributesShedAndAdmittedDispositions) {
  const std::string access_path = TempPath("server_access_shed.ndjson");
  util::Logger::Options access_options;
  access_options.ndjson = true;
  auto access_log = util::Logger::Open(access_path, access_options);
  ASSERT_TRUE(access_log.ok()) << access_log.status().ToString();

  ServerOptions options;
  options.access_log = access_log.value().get();
  options.max_pending = 2;
  StartServerWith(std::move(options));
  server_->PauseCoalescerForTest();

  Client client = Dial();
  const size_t total = 6;
  // One write for the whole burst (see OverloadSheds... above): all six
  // admission decisions happen before any response is flushed.
  std::string burst;
  for (size_t i = 0; i < total; ++i) {
    Json request = Json::Object()
                       .Set("op", Json::Str("query"))
                       .Set("kind", Json::Str("exact"))
                       .Set("id", Json::Str("q" + std::to_string(i)));
    Json q = Json::Array();
    for (const double v : queries_.Row(i)) q.Append(Json::Number(v));
    request.Set("q", std::move(q));
    burst += request.Dump() + "\n";
  }
  ASSERT_TRUE(client.SendLine(burst).ok());
  size_t shed = 0;
  for (size_t i = 0; i < total; ++i) {
    if (i == 0) server_->ResumeCoalescerForTest();
    auto line = client.ReceiveLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    if (line.value().find("overloaded") != std::string::npos) ++shed;
  }
  ASSERT_GT(shed, 0u);
  server_->Shutdown();
  server_->Wait();

  size_t shed_records = 0, admitted_records = 0;
  for (const std::string& record : ReadLines(access_path)) {
    if (record.find("\"disposition\":\"shed\"") != std::string::npos) {
      ++shed_records;
      EXPECT_NE(record.find("\"shed_code\":\"overloaded\""),
                std::string::npos)
          << record;
      EXPECT_NE(record.find("\"peer\""), std::string::npos) << record;
    } else if (record.find("\"disposition\":\"admitted\"") !=
               std::string::npos) {
      ++admitted_records;
      EXPECT_NE(record.find("\"peer\""), std::string::npos) << record;
    }
  }
  EXPECT_EQ(shed_records, shed);
  EXPECT_EQ(admitted_records, total - shed);
}

// ------------------------------------------------- registry serving

// Builds a Type I engine over seeded clustered points (4 dims, so the
// fixture's queries_ fit all registry models).
Engine BuildRegistryModel(uint64_t seed, size_t rows, double gamma) {
  util::Rng rng(seed);
  const data::Matrix points = data::SampleClustered(rows, 4, 3, 0.08, rng);
  EngineOptions options;
  options.kernel = core::KernelParams::Gaussian(gamma);
  options.leaf_capacity = 24;
  auto built = Engine::BuildUniform(points, 1.0, options);
  KARL_CHECK(built.ok()) << built.status().ToString();
  return std::move(built).ValueOrDie();
}

// Fresh empty directory under the test temp root.
std::string FreshModelDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Json ExactQueryRequest(std::span<const double> q,
                       const std::string& model) {
  Json row = Json::Array();
  for (const double v : q) row.Append(Json::Number(v));
  Json request = Json::Object()
                     .Set("op", Json::Str("query"))
                     .Set("kind", Json::Str("exact"))
                     .Set("q", std::move(row));
  if (!model.empty()) request.Set("model", Json::Str(model));
  return request;
}

// Acceptance: a registry-backed server answers named queries with each
// model's own engine, bit-identical to what a single-model server over
// that engine would return; unnamed queries go to the default and
// unknown names get the typed not_found error.
TEST_F(ServerTest, RegistryServerAnswersNamedModelsBitIdentically) {
  const Engine alpha = BuildRegistryModel(31, 400, 3.0);
  const Engine beta = BuildRegistryModel(33, 300, 2.0);
  const std::string dir = FreshModelDir("karl_server_registry_models");
  ASSERT_TRUE(registry::WriteSnapshot(dir + "/alpha.snap", alpha).ok());
  ASSERT_TRUE(registry::WriteSnapshot(dir + "/beta.snap", beta).ok());

  registry::RegistryOptions registry_options;
  registry_options.default_model = "alpha";
  registry_options.metrics = &registry_;
  auto models = registry::ModelRegistry::Open(dir, registry_options);
  ASSERT_TRUE(models.ok()) << models.status().ToString();

  ServerOptions options;
  options.port = 0;
  options.threads = 2;
  options.metrics = &registry_;
  auto server = Server::StartWithRegistry(models.value().get(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  server_ = std::move(server).ValueOrDie();

  Client client = Dial();
  for (size_t i = 0; i < 8; ++i) {
    const auto q = queries_.Row(i);
    for (const auto& [name, engine] :
         {std::pair<std::string, const Engine*>{"alpha", &alpha},
          {"beta", &beta},
          {"", &alpha}}) {  // "" = default model.
      auto response = client.RoundTrip(ExactQueryRequest(q, name));
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      const Json* value = response.value().Find("value");
      ASSERT_NE(value, nullptr) << response.value().Dump();
      EXPECT_EQ(value->number_value(), engine->Exact(q))
          << "model '" << name << "' query " << i;
    }
  }

  // Unknown model: typed not_found naming the known models.
  auto missing =
      client.RoundTrip(ExactQueryRequest(queries_.Row(0), "gamma"));
  ASSERT_TRUE(missing.ok()) << missing.status().ToString();
  const Json* error = missing.value().Find("error");
  ASSERT_NE(error, nullptr) << missing.value().Dump();
  EXPECT_EQ(error->string_value(), "not_found");
  const Json* detail = missing.value().Find("detail");
  ASSERT_NE(detail, nullptr);
  EXPECT_NE(detail->string_value().find("alpha"), std::string::npos)
      << detail->string_value();
}

// Acceptance: a hot reload (replace-by-rename + op=reload) while
// clients are mid-flight loses no requests — every answer arrives and
// is bit-identical to either the old or the new model, never anything
// else; afterwards new queries see the new model.
TEST_F(ServerTest, HotReloadLosesNoInFlightRequests) {
  const Engine v1 = BuildRegistryModel(41, 400, 3.0);
  const Engine v2 = BuildRegistryModel(43, 300, 3.0);
  const std::string dir = FreshModelDir("karl_server_reload_models");
  ASSERT_TRUE(registry::WriteSnapshot(dir + "/m.snap", v1).ok());

  registry::RegistryOptions registry_options;
  registry_options.metrics = &registry_;
  auto models = registry::ModelRegistry::Open(dir, registry_options);
  ASSERT_TRUE(models.ok()) << models.status().ToString();

  ServerOptions options;
  options.port = 0;
  options.threads = 2;
  options.metrics = &registry_;
  auto server = Server::StartWithRegistry(models.value().get(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  server_ = std::move(server).ValueOrDie();

  // Per-query answers of both generations, computed up front so worker
  // threads only compare.
  const size_t num_queries = 16;
  std::vector<double> expected_v1(num_queries);
  std::vector<double> expected_v2(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    expected_v1[i] = v1.Exact(queries_.Row(i));
    expected_v2[i] = v2.Exact(queries_.Row(i));
  }

  std::atomic<size_t> answered{0};
  std::atomic<size_t> wrong{0};
  std::atomic<bool> go_reload{false};
  const size_t kThreads = 4;
  const size_t kItersPerThread = 60;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Client client = Dial();
      for (size_t iter = 0; iter < kItersPerThread; ++iter) {
        if (t == 0 && iter == kItersPerThread / 4) go_reload = true;
        const size_t qi = (t + iter) % num_queries;
        auto value = client.Exact(queries_.Row(qi));
        if (!value.ok()) continue;  // A drop; stays visible in `answered`.
        answered.fetch_add(1);
        if (value.value() != expected_v1[qi] &&
            value.value() != expected_v2[qi]) {
          wrong.fetch_add(1);
        }
      }
    });
  }

  // Mid-storm: write the new generation next to the old and swap it in
  // atomically (rename), then reload through the protocol op.
  while (!go_reload.load()) std::this_thread::yield();
  ASSERT_TRUE(registry::WriteSnapshot(dir + "/m.snap.tmp", v2).ok());
  std::filesystem::rename(dir + "/m.snap.tmp", dir + "/m.snap");
  Client admin = Dial();
  auto reloaded =
      admin.RoundTrip(Json::Object().Set("op", Json::Str("reload")));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  const Json* status = reloaded.value().Find("status");
  ASSERT_NE(status, nullptr) << reloaded.value().Dump();
  EXPECT_EQ(status->string_value(), "reloaded");

  for (std::thread& worker : workers) worker.join();
  // Zero dropped, zero foreign answers.
  EXPECT_EQ(answered.load(), kThreads * kItersPerThread);
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(models.value()->reloads(), 1u);

  // The storm has passed; fresh queries serve the new generation.
  Client after = Dial();
  for (size_t i = 0; i < 4; ++i) {
    auto value = after.Exact(queries_.Row(i));
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_EQ(value.value(), expected_v2[i]);
  }
}

// First value of the exact exposition series `series` (label block and
// suffix included) in a /metrics body; -1 when absent.
double MetricValue(const std::string& body, const std::string& series) {
  const std::string needle = "\n" + series + " ";
  const size_t pos = body.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(body.c_str() + pos + needle.size(), nullptr);
}

// Acceptance (per-model observability): with two models under load,
// /metrics exposes karl_serving_eval_us{model=...} per model (cumulative
// and _window60s) whose counts reconcile exactly against the global
// stage histogram, and /sloz shows the model violating its latency
// objective burning error budget while the healthy model keeps a full
// budget — with the burn WARN edge in the structured log.
TEST_F(ServerTest, PerModelMetricsReconcileAndSloBudgetBurnsForSlowModel) {
  const Engine alpha = BuildRegistryModel(51, 400, 3.0);
  const Engine beta = BuildRegistryModel(53, 300, 2.0);
  const std::string dir = FreshModelDir("karl_server_per_model_slo");
  ASSERT_TRUE(registry::WriteSnapshot(dir + "/alpha.snap", alpha).ok());
  ASSERT_TRUE(registry::WriteSnapshot(dir + "/beta.snap", beta).ok());

  registry::RegistryOptions registry_options;
  registry_options.default_model = "alpha";
  registry_options.metrics = &registry_;
  auto models = registry::ModelRegistry::Open(dir, registry_options);
  ASSERT_TRUE(models.ok()) << models.status().ToString();

  const std::string log_path = TempPath("karl_server_slo_burn.log");
  util::Logger::Options log_options;
  log_options.ndjson = true;
  auto logger = util::Logger::Open(log_path, log_options);
  ASSERT_TRUE(logger.ok()) << logger.status().ToString();

  ServerOptions options;
  options.port = 0;
  options.threads = 2;
  options.metrics = &registry_;
  options.admin_port = 0;
  options.logger = logger.value().get();
  // Alpha's objective is unmissable; beta's latency threshold is below
  // any real request, so every beta query burns its error budget.
  options.slo.default_objective.latency_threshold_us = 1e9;
  telemetry::SloObjective tight;
  tight.latency_threshold_us = 0.001;
  options.slo.per_model["beta"] = tight;
  auto server = Server::StartWithRegistry(models.value().get(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  server_ = std::move(server).ValueOrDie();
  const int admin_port = server_->admin_port();
  ASSERT_GT(admin_port, 0);

  constexpr size_t kPerModel = 20;
  Client client = Dial();
  for (size_t i = 0; i < kPerModel; ++i) {
    for (const char* name : {"alpha", "beta"}) {
      auto response =
          client.RoundTrip(ExactQueryRequest(queries_.Row(i), name));
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_NE(response.value().Find("value"), nullptr)
          << response.value().Dump();
    }
  }

  // The labeled serving series reconcile against the global histogram:
  // per-model counts are exact and sum to the unlabeled family.
  const std::string metrics = HttpGet(admin_port, "/metrics");
  const size_t metrics_body_at = metrics.find("\r\n\r\n");
  ASSERT_NE(metrics_body_at, std::string::npos);
  const std::string body = metrics.substr(metrics_body_at + 4);
  const double alpha_count =
      MetricValue(body, "karl_serving_eval_us_count{model=\"alpha\"}");
  const double beta_count =
      MetricValue(body, "karl_serving_eval_us_count{model=\"beta\"}");
  const double global_count = MetricValue(body, "karl_server_eval_us_count");
  EXPECT_EQ(alpha_count, static_cast<double>(kPerModel)) << body;
  EXPECT_EQ(beta_count, static_cast<double>(kPerModel)) << body;
  EXPECT_EQ(alpha_count + beta_count, global_count);
  EXPECT_NE(body.find("karl_serving_eval_us{model=\"alpha\",quantile="),
            std::string::npos);
  EXPECT_NE(
      body.find("karl_serving_eval_us_window60s{model=\"beta\",quantile="),
      std::string::npos);
  EXPECT_NE(body.find("karl_serving_requests_total{model=\"beta\"} 20"),
            std::string::npos);
  // Burn gauges exported with the full {model,slo,window} label set.
  EXPECT_NE(body.find("karl_slo_burn_rate{model=\"beta\",slo=\"latency\","
                      "window=\"fast\"}"),
            std::string::npos);

  // /sloz: beta's latency budget is visibly burning, alpha's is intact.
  const std::string sloz = HttpGet(admin_port, "/sloz");
  EXPECT_NE(sloz.find("HTTP/1.1 200"), std::string::npos);
  const size_t sloz_body_at = sloz.find("\r\n\r\n");
  ASSERT_NE(sloz_body_at, std::string::npos);
  auto sloz_json = Json::Parse(sloz.substr(sloz_body_at + 4));
  ASSERT_TRUE(sloz_json.ok()) << sloz.substr(sloz_body_at + 4);
  const Json* sloz_models = sloz_json.value().Find("models");
  ASSERT_NE(sloz_models, nullptr);
  const Json* beta_slo = sloz_models->Find("beta");
  ASSERT_NE(beta_slo, nullptr) << sloz.substr(sloz_body_at + 4);
  const Json* beta_latency = beta_slo->Find("latency");
  ASSERT_NE(beta_latency, nullptr);
  EXPECT_TRUE(beta_latency->Find("burning")->bool_value());
  EXPECT_LT(beta_latency->Find("budget_remaining")->number_value(), 1.0);
  EXPECT_GE(beta_latency->Find("burn_rate_fast")->number_value(),
            tight.fast_burn_threshold);
  const Json* alpha_latency = sloz_models->Find("alpha")->Find("latency");
  ASSERT_NE(alpha_latency, nullptr);
  EXPECT_FALSE(alpha_latency->Find("burning")->bool_value());
  EXPECT_EQ(alpha_latency->Find("budget_remaining")->number_value(), 1.0);

  // The flight recorder attributes every request to its model.
  const std::string flightz = HttpGet(admin_port, "/flightz");
  EXPECT_NE(flightz.find("\"model\":\"alpha\""), std::string::npos);
  EXPECT_NE(flightz.find("\"model\":\"beta\""), std::string::npos);

  // Admin pages carry the per-model resident/generation view.
  const std::string varz = HttpGet(admin_port, "/varz");
  EXPECT_NE(varz.find("\"per_model\""), std::string::npos) << varz;
  EXPECT_NE(varz.find("\"generation\""), std::string::npos);
  const std::string statusz = HttpGet(admin_port, "/statusz");
  EXPECT_NE(statusz.find("\"models\""), std::string::npos);
  EXPECT_NE(statusz.find("\"resident_bytes\""), std::string::npos);

  // Crossing the burn threshold logged exactly one WARN edge for beta.
  server_->Shutdown();
  server_->Wait();
  server_.reset();  // Options reference the local logger.
  size_t burn_lines = 0;
  for (const std::string& line : ReadLines(log_path)) {
    if (line.find("\"event\":\"slo.burn\"") != std::string::npos) {
      ++burn_lines;
      EXPECT_NE(line.find("\"model\":\"beta\""), std::string::npos) << line;
    }
  }
  EXPECT_EQ(burn_lines, 1u);
}

}  // namespace
}  // namespace karl::server
