// Differential tests for the SIMD hot path (core/simd): every vector
// tier the host can run is compared against the scalar oracle across all
// kernel families, weighting types, dimensionalities and leaf-range
// alignments, pinning the accuracy contract stated in core/simd/simd.h:
//
//  * scalar tier == legacy loops, bit-for-bit (EXPECT_EQ on doubles);
//  * vector leaf aggregates within kLeafSumRelTolerance of scalar,
//    relative to the sum of absolute contributions;
//  * vector Dot/SquaredNorm within kDotRelTolerance;
//  * the vector exp within kVectorExpUlpBound ULPs of std::exp;
//  * dispatch: tier parsing/forcing, loud failure on invalid values,
//    and the karl_simd_tier gauge.
//
// The whole binary also runs under KARL_SIMD=scalar in CI (job
// scalar-forced); the differential cases then degenerate to
// scalar-vs-scalar and must still pass.

#include "core/simd/simd.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/karl.h"
#include "core/kernel.h"
#include "core/simd/soa_block.h"
#include "data/matrix.h"
#include "data/synthetic.h"
#include "telemetry/metrics.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace karl {
namespace {

namespace simd = core::simd;
using core::KernelParams;
using core::KernelType;
using simd::SoaLeafBlocks;
using simd::Tier;

// Restores the tier that was active at construction; every test that
// calls ForceTier holds one so state never leaks across tests.
class TierGuard {
 public:
  TierGuard() : saved_(simd::ActiveTier()) {}
  ~TierGuard() { simd::ForceTier(saved_); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

 private:
  Tier saved_;
};

std::vector<Tier> SupportedTiers() {
  std::vector<Tier> tiers = {Tier::kScalar};
  if (simd::TierSupported(Tier::kAvx2)) tiers.push_back(Tier::kAvx2);
  if (simd::TierSupported(Tier::kAvx512)) tiers.push_back(Tier::kAvx512);
  return tiers;
}

// Kernel parameter scales chosen so contributions stay well inside the
// normal range for every tested dimensionality (no denormal kernel
// values — those are covered by the dedicated ExpBlock underflow test).
std::vector<KernelParams> KernelsForDim(size_t d) {
  const double dd = static_cast<double>(d);
  return {
      KernelParams::Gaussian(3.0 / dd),
      KernelParams::Laplacian(2.0 / std::sqrt(dd)),
      KernelParams::Cauchy(1.5 / dd),
      KernelParams::Polynomial(0.4 / dd, 0.1, 3),
      KernelParams::Polynomial(0.3 / dd, -0.1, 2),
      KernelParams::Sigmoid(0.3 / dd, 0.05),
  };
}

std::vector<double> WeightsForType(int weighting, size_t n, util::Rng& rng) {
  std::vector<double> w(n);
  for (auto& v : w) {
    switch (weighting) {
      case 1:
        v = 0.7;
        break;
      case 2:
        v = rng.Uniform(0.05, 1.5);
        break;
      default:
        v = rng.Uniform(-1.0, 1.0);
        if (v == 0.0) v = 0.5;
        break;
    }
  }
  return w;
}

data::Matrix RandomMatrix(size_t n, size_t d, util::Rng& rng) {
  data::Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (double& v : m.MutableRow(i)) v = rng.Uniform(-1.0, 1.0);
  }
  return m;
}

// Σ |wᵢ·K(q,pᵢ)| over [begin, end) — the conditioning scale the leaf
// tolerance is stated against.
double AbsMass(const KernelParams& kernel, const data::Matrix& pts,
               std::span<const double> w, uint32_t begin, uint32_t end,
               std::span<const double> q) {
  double mass = 0.0;
  for (uint32_t i = begin; i < end; ++i) {
    mass += std::abs(w[i] * core::KernelValue(kernel, q, pts.Row(i)));
  }
  return mass;
}

// The legacy evaluator leaf loop verbatim: Kahan over wᵢ·KernelValue in
// ascending row order. The scalar tier must reproduce this bit-for-bit.
double LegacyLeafLoop(const KernelParams& kernel, const data::Matrix& pts,
                      std::span<const double> w, uint32_t begin, uint32_t end,
                      std::span<const double> q) {
  util::KahanAccumulator acc;
  for (uint32_t i = begin; i < end; ++i) {
    acc.Add(w[i] * core::KernelValue(kernel, q, pts.Row(i)));
  }
  return acc.Total();
}

// ULP distance between two positive finite doubles (exp never returns
// zero or a negative value for the arguments we feed it).
int64_t UlpDiff(double a, double b) {
  return std::abs(std::bit_cast<int64_t>(a) - std::bit_cast<int64_t>(b));
}

// ---------------------------------------------------------------------
// Leaf-aggregate differential suite: tiers x kernels x weightings x
// dims x leaf-range alignments.
// ---------------------------------------------------------------------

class SimdDifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SimdDifferentialTest, VectorLeafAggregatesMatchScalarOracle) {
  const size_t d = GetParam();
  const size_t n = 53;  // 7 blocks: 6 full + 1 ragged (5 pad lanes).
  util::Rng rng(1234 + static_cast<uint64_t>(d));
  const data::Matrix pts = RandomMatrix(n, d, rng);

  // Aligned ranges, unaligned heads/tails, an intra-block sliver, the
  // ragged final block, single rows and an empty range.
  const std::pair<uint32_t, uint32_t> ranges[] = {
      {0, 53}, {0, 8}, {8, 24}, {3, 5}, {5, 21},
      {48, 53}, {7, 9}, {52, 53}, {4, 4}};

  for (const int weighting : {1, 2, 3}) {
    const auto weights = WeightsForType(weighting, n, rng);
    SoaLeafBlocks soa;
    soa.Build(pts, weights);

    for (const KernelParams& kernel : KernelsForDim(d)) {
      std::vector<double> q(d);
      for (auto& v : q) v = rng.Uniform(-1.0, 1.0);

      for (const auto& [begin, end] : ranges) {
        TierGuard guard;
        simd::ForceTier(Tier::kScalar);
        const double scalar = simd::LeafAggregate(kernel, soa, begin, end, q);

        // Scalar tier vs the legacy evaluator loop: bit-identical.
        EXPECT_EQ(scalar, LegacyLeafLoop(kernel, pts, weights, begin, end, q))
            << core::KernelTypeToString(kernel.type) << " w" << weighting
            << " d=" << d << " [" << begin << "," << end << ")";

        const double mass = AbsMass(kernel, pts, weights, begin, end, q);
        for (const Tier tier : SupportedTiers()) {
          simd::ForceTier(tier);
          const double vec = simd::LeafAggregate(kernel, soa, begin, end, q);
          EXPECT_LE(std::abs(vec - scalar),
                    simd::kLeafSumRelTolerance * mass)
              << simd::TierName(tier) << " "
              << core::KernelTypeToString(kernel.type) << " w" << weighting
              << " d=" << d << " [" << begin << "," << end
              << ") scalar=" << scalar << " vec=" << vec;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SimdDifferentialTest,
                         ::testing::Values(1, 3, 7, 8, 16, 33, 100),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "D" + std::to_string(info.param);
                         });

TEST(SimdDifferentialTest, DotAndSquaredNormMatchScalarOracle) {
  util::Rng rng(88);
  for (const size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{7}, size_t{8},
                         size_t{15}, size_t{16}, size_t{17}, size_t{18},
                         size_t{28}, size_t{31}, size_t{32}, size_t{33},
                         size_t{64}, size_t{100}, size_t{257}}) {
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Uniform(-2.0, 2.0);
      b[i] = rng.Uniform(-2.0, 2.0);
    }
    double dot_mass = 0.0, norm_mass = 0.0;
    for (size_t i = 0; i < n; ++i) {
      dot_mass += std::abs(a[i] * b[i]);
      norm_mass += a[i] * a[i];
    }

    TierGuard guard;
    simd::ForceTier(Tier::kScalar);
    // Scalar tier delegates to the util loops: bit-identical.
    EXPECT_EQ(simd::Dot(a, b), util::Dot(a, b)) << "n=" << n;
    EXPECT_EQ(simd::SquaredNorm(a), util::SquaredNorm(a)) << "n=" << n;

    const double ref_dot = util::Dot(a, b);
    const double ref_norm = util::SquaredNorm(a);
    for (const Tier tier : SupportedTiers()) {
      simd::ForceTier(tier);
      EXPECT_LE(std::abs(simd::Dot(a, b) - ref_dot),
                simd::kDotRelTolerance * dot_mass)
          << simd::TierName(tier) << " n=" << n;
      EXPECT_LE(std::abs(simd::SquaredNorm(a) - ref_norm),
                simd::kDotRelTolerance * norm_mass)
          << simd::TierName(tier) << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------
// Vector exp: ULP bound across the normal range, absolute bound in the
// clamped underflow region.
// ---------------------------------------------------------------------

TEST(SimdExpTest, WithinUlpBoundOfStdExpAcrossNormalRange) {
  util::Rng rng(4242);
  std::vector<double> args;
  // Dense random coverage of the full normal-result range plus the
  // evaluator's actual operating region (small negative arguments).
  for (int i = 0; i < 4000; ++i) args.push_back(rng.Uniform(-708.0, 709.0));
  for (int i = 0; i < 4000; ++i) args.push_back(rng.Uniform(-40.0, 0.0));
  // Edges: zero, ±tiny, the clamp boundaries, exact powers of two.
  for (const double v : {0.0, 1e-300, -1e-300, -708.0, 709.0, 1.0, -1.0,
                         64.0, -64.0, 0.5, -0.5}) {
    args.push_back(v);
  }

  std::vector<double> out(args.size());
  for (const Tier tier : SupportedTiers()) {
    TierGuard guard;
    simd::ForceTier(tier);
    simd::ExpBlock(args, out);
    for (size_t i = 0; i < args.size(); ++i) {
      const double expected = std::exp(args[i]);
      EXPECT_LE(UlpDiff(out[i], expected), simd::kVectorExpUlpBound)
          << simd::TierName(tier) << " exp(" << args[i] << ") = " << out[i]
          << " want " << expected;
    }
  }
}

TEST(SimdExpTest, ClampedUnderflowWithinAbsoluteBound) {
  const std::vector<double> args = {-708.5, -709.0, -745.0, -1000.0, -1e6};
  std::vector<double> out(args.size());
  for (const Tier tier : SupportedTiers()) {
    TierGuard guard;
    simd::ForceTier(tier);
    simd::ExpBlock(args, out);
    for (size_t i = 0; i < args.size(); ++i) {
      EXPECT_GE(out[i], 0.0) << simd::TierName(tier) << " " << args[i];
      EXPECT_LE(std::abs(out[i] - std::exp(args[i])),
                simd::kVectorExpUnderflowAbs)
          << simd::TierName(tier) << " exp(" << args[i] << ") = " << out[i];
    }
  }
}

// ---------------------------------------------------------------------
// Dispatch: tier resolution, forcing, loud failures, the gauge.
// ---------------------------------------------------------------------

TEST(SimdDispatchTest, ActiveTierIsAlwaysSupported) {
  EXPECT_TRUE(simd::TierSupported(simd::ActiveTier()));
  EXPECT_TRUE(simd::TierCompiled(Tier::kScalar));
  EXPECT_TRUE(simd::TierSupported(Tier::kScalar));
}

TEST(SimdDispatchTest, TierNamesRoundTripThroughParse) {
  for (const Tier tier : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512}) {
    EXPECT_EQ(simd::ParseTier(simd::TierName(tier)), tier);
  }
}

TEST(SimdDispatchTest, ResolveNullOrEmptyAutoDetects) {
  EXPECT_EQ(simd::ResolveTier(nullptr), simd::DetectBestTier());
  EXPECT_EQ(simd::ResolveTier(""), simd::DetectBestTier());
  // KARL_SIMD=scalar must force the fallback even on vector hardware.
  EXPECT_EQ(simd::ResolveTier("scalar"), Tier::kScalar);
}

TEST(SimdDispatchTest, BestTierBeatsOrEqualsEveryOther) {
  const Tier best = simd::DetectBestTier();
  for (const Tier tier : SupportedTiers()) {
    EXPECT_GE(static_cast<int>(best), static_cast<int>(tier));
  }
}

TEST(SimdDispatchDeathTest, InvalidTierNameDiesLoudly) {
  EXPECT_DEATH((void)simd::ParseTier("turbo"), "invalid KARL_SIMD value");
  EXPECT_DEATH((void)simd::ResolveTier("AVX2"), "invalid KARL_SIMD value");
}

TEST(SimdDispatchDeathTest, UnsupportedTierRequestDiesLoudly) {
  for (const Tier tier : {Tier::kAvx2, Tier::kAvx512}) {
    if (simd::TierSupported(tier)) continue;
    const std::string name(simd::TierName(tier));
    EXPECT_DEATH((void)simd::ResolveTier(name.c_str()), "cannot run");
    EXPECT_DEATH(simd::ForceTier(tier), "cannot force unsupported tier");
  }
}

TEST(SimdDispatchTest, EngineBuildExportsTierGauge) {
  util::Rng rng(5);
  const data::Matrix pts = data::SampleClustered(100, 3, 2, 0.1, rng);
  const std::vector<double> weights(100, 1.0);
  telemetry::Registry registry;
  EngineOptions options;
  options.kernel = KernelParams::Gaussian(4.0);
  options.metrics = &registry;
  auto engine = Engine::Build(pts, weights, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(registry.GetGauge("karl_simd_tier")->value(),
            static_cast<double>(simd::ActiveTier()));
}

// ---------------------------------------------------------------------
// Engine-level cross-tier agreement: full queries (traversal + bounds +
// leaf sums) under each vector tier agree with the scalar run within
// the aggregate tolerance, and the auditor stays silent throughout.
// ---------------------------------------------------------------------

TEST(SimdEngineTest, ExactQueriesAgreeAcrossTiersWithinTolerance) {
  util::Rng rng(31337);
  const size_t d = 6;
  const data::Matrix pts = data::SampleClustered(400, d, 3, 0.08, rng);
  std::vector<double> weights(pts.rows());
  for (auto& w : weights) w = rng.Uniform(0.05, 1.5);

  for (const KernelParams& kernel :
       {KernelParams::Gaussian(4.0), KernelParams::Laplacian(2.0),
        KernelParams::Polynomial(0.2, 0.1, 3)}) {
    EngineOptions options;
    options.kernel = kernel;
    options.audit_bounds = true;  // lb <= exact <= ub under every tier.
    auto engine = Engine::Build(pts, weights, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    for (int trial = 0; trial < 8; ++trial) {
      std::vector<double> q(d);
      for (auto& v : q) v = rng.Uniform(-0.1, 1.1);

      TierGuard guard;
      simd::ForceTier(Tier::kScalar);
      const double scalar_exact = engine.value().Exact(q);
      const double ekaq_scalar = engine.value().Ekaq(q, 0.1);

      for (const Tier tier : SupportedTiers()) {
        simd::ForceTier(tier);
        // Positive weights: |exact| is itself the absolute mass. The 4x
        // slack covers the extra reduction steps of the query traversal
        // splitting one sum across many leaf ranges.
        const double tol =
            4.0 * simd::kLeafSumRelTolerance * (1.0 + std::abs(scalar_exact));
        EXPECT_NEAR(engine.value().Exact(q), scalar_exact, tol)
            << simd::TierName(tier) << " "
            << core::KernelTypeToString(kernel.type) << " trial " << trial;
        EXPECT_LE(std::abs(engine.value().Ekaq(q, 0.1) - scalar_exact),
                  0.1 * std::abs(scalar_exact) + 1e-9)
            << simd::TierName(tier) << " trial " << trial;
        (void)ekaq_scalar;
        const double tau = scalar_exact * 1.3 + 0.1;
        EXPECT_EQ(engine.value().Tkaq(q, tau), scalar_exact > tau)
            << simd::TierName(tier) << " trial " << trial;
      }
    }
  }
}

// ---------------------------------------------------------------------
// SoA layout unit coverage (the randomized round-trip fuzz lives in
// property_test.cc P7).
// ---------------------------------------------------------------------

TEST(SoaBlockTest, LayoutRoundTripsAndPadsWithZeros) {
  util::Rng rng(9);
  const size_t n = 13, d = 5;  // 2 blocks, 3 pad lanes.
  const data::Matrix pts = RandomMatrix(n, d, rng);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.Uniform(-1.0, 1.0);

  SoaLeafBlocks soa;
  soa.Build(pts, weights);
  ASSERT_EQ(soa.rows(), n);
  ASSERT_EQ(soa.dims(), d);
  ASSERT_EQ(soa.num_blocks(), 2u);
  EXPECT_GT(soa.MemoryUsageBytes(), 0u);

  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(soa.WeightAt(i), weights[i]) << i;
    for (size_t j = 0; j < d; ++j) {
      EXPECT_EQ(soa.At(i, j), pts.Row(i)[j]) << i << "," << j;
    }
  }
  // Pad lanes: weight 0 and coordinate 0, so a vector kernel evaluated
  // over them contributes exactly 0.
  for (size_t lane = n % SoaLeafBlocks::kBlockPoints;
       lane < SoaLeafBlocks::kBlockPoints; ++lane) {
    EXPECT_EQ(soa.BlockWeights(1)[lane], 0.0) << lane;
    for (size_t j = 0; j < d; ++j) {
      EXPECT_EQ(soa.BlockDim(1, j)[lane], 0.0) << lane << "," << j;
    }
  }
}

TEST(SoaBlockTest, EmptyInputStaysEmpty) {
  SoaLeafBlocks soa;
  EXPECT_TRUE(soa.empty());
  soa.Build(data::Matrix(), {});
  EXPECT_TRUE(soa.empty());
  EXPECT_EQ(soa.num_blocks(), 0u);
}

}  // namespace
}  // namespace karl
