// Tests for telemetry/slo.h and server/slo_config.h: burn-rate math
// against synthetic traffic driven through the explicit-clock seam,
// window expiry, fast/slow window divergence, edge-triggered WARN
// logging, the model-cardinality cap, /sloz JSON rendering, gauge
// exposition, and --slo-config JSON parsing (defaults, inheritance,
// and every rejection class).

#include "telemetry/slo.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "server/json.h"
#include "server/slo_config.h"
#include "telemetry/metrics.h"
#include "util/log.h"

namespace karl::telemetry {
namespace {

// A tidy epoch-aligned base instant: multiples of the 10s sub-window.
constexpr uint64_t kBaseUs = 1'000'000'000'000;  // ~11.6 days up.
constexpr uint64_t kSecond = 1'000'000;

SloConfig TightConfig() {
  SloConfig config;
  config.default_objective.latency_threshold_us = 1'000.0;
  config.default_objective.latency_target = 0.9;  // 10% budget.
  config.default_objective.availability_target = 0.9;
  config.default_objective.window_s = 3600;
  config.default_objective.fast_burn_threshold = 14.4;
  config.default_objective.slow_burn_threshold = 6.0;
  return config;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

size_t CountContaining(const std::vector<std::string>& lines,
                       const std::string& needle) {
  size_t n = 0;
  for (const std::string& line : lines) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

TEST(SloConfigTest, ForModelFallsBackToDefault) {
  SloConfig config = TightConfig();
  SloObjective special = config.default_objective;
  special.latency_threshold_us = 42.0;
  config.per_model.emplace("special", special);
  EXPECT_EQ(config.ForModel("special").latency_threshold_us, 42.0);
  EXPECT_EQ(config.ForModel("anything-else").latency_threshold_us, 1'000.0);
}

TEST(SloEngineTest, BurnRateIsBadFractionOverAllowedFraction) {
  Registry registry;
  SloEngine engine(TightConfig(), &registry, nullptr);
  // 100 requests, 20 over the 1ms threshold: bad fraction 0.2 against
  // an allowed 0.1 → burn rate 2.0 on both windows. All succeed, so
  // availability burns nothing.
  for (int i = 0; i < 80; ++i) {
    engine.ObserveAt("m", 500.0, /*ok=*/true, kBaseUs);
  }
  for (int i = 0; i < 20; ++i) {
    engine.ObserveAt("m", 5'000.0, /*ok=*/true, kBaseUs);
  }
  engine.RefreshGaugesAt(kBaseUs);

  const LabelSet latency{{"model", "m"}, {"slo", "latency"}};
  const LabelSet availability{{"model", "m"}, {"slo", "availability"}};
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("karl_slo_burn_rate",
                        LabelSet(latency).Set("window", "fast"))
          ->value(),
      2.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("karl_slo_burn_rate",
                        LabelSet(latency).Set("window", "slow"))
          ->value(),
      2.0);
  // 20 bad against an allowed 10: the whole latency budget is gone.
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("karl_slo_error_budget_remaining", latency)->value(),
      0.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("karl_slo_burn_rate",
                        LabelSet(availability).Set("window", "fast"))
          ->value(),
      0.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("karl_slo_error_budget_remaining", availability)
          ->value(),
      1.0);
}

TEST(SloEngineTest, ErrorsBurnTheAvailabilityBudget) {
  Registry registry;
  SloEngine engine(TightConfig(), &registry, nullptr);
  // Half the budgeted failure rate: 5 errors in 100 against allowed 10.
  for (int i = 0; i < 95; ++i) {
    engine.ObserveAt("m", 10.0, /*ok=*/true, kBaseUs);
  }
  for (int i = 0; i < 5; ++i) {
    engine.ObserveAt("m", 10.0, /*ok=*/false, kBaseUs);
  }
  engine.RefreshGaugesAt(kBaseUs);
  const LabelSet availability{{"model", "m"}, {"slo", "availability"}};
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("karl_slo_burn_rate",
                        LabelSet(availability).Set("window", "slow"))
          ->value(),
      0.5);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("karl_slo_error_budget_remaining", availability)
          ->value(),
      0.5);
}

TEST(SloEngineTest, BudgetRecoversWhenTheWindowRollsPast) {
  Registry registry;
  SloConfig config = TightConfig();
  config.default_objective.window_s = 600;
  SloEngine engine(config, &registry, nullptr);
  for (int i = 0; i < 10; ++i) {
    engine.ObserveAt("m", 5'000.0, /*ok=*/true, kBaseUs);
  }
  const LabelSet latency{{"model", "m"}, {"slo", "latency"}};
  Gauge* slow = registry.GetGauge("karl_slo_burn_rate",
                                  LabelSet(latency).Set("window", "slow"));
  engine.RefreshGaugesAt(kBaseUs);
  EXPECT_GT(slow->value(), 0.0);
  engine.RefreshGaugesAt(kBaseUs + (600 + 30) * kSecond);
  EXPECT_DOUBLE_EQ(slow->value(), 0.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("karl_slo_error_budget_remaining", latency)->value(),
      1.0);
}

TEST(SloEngineTest, FastWindowForgetsBeforeTheSlowWindow) {
  Registry registry;
  SloEngine engine(TightConfig(), &registry, nullptr);
  for (int i = 0; i < 10; ++i) {
    engine.ObserveAt("m", 5'000.0, /*ok=*/true, kBaseUs);
  }
  // 400s later: outside the 300s fast window, inside the 3600s slow
  // one — a sharp-but-old regression stops alerting fast, keeps
  // draining the budget.
  engine.RefreshGaugesAt(kBaseUs + 400 * kSecond);
  const LabelSet latency{{"model", "m"}, {"slo", "latency"}};
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("karl_slo_burn_rate",
                        LabelSet(latency).Set("window", "fast"))
          ->value(),
      0.0);
  EXPECT_GT(registry.GetGauge("karl_slo_burn_rate",
                              LabelSet(latency).Set("window", "slow"))
                ->value(),
            0.0);
}

TEST(SloEngineTest, BurnEdgeLogsOnceAndClearsOnce) {
  const std::string path = TempPath("slo_burn_edges.log");
  util::Logger::Options options;
  options.ndjson = true;
  auto logger = util::Logger::Open(path, options);
  ASSERT_TRUE(logger.ok()) << logger.status().ToString();

  SloConfig config = TightConfig();
  config.default_objective.window_s = 600;
  SloEngine engine(config, nullptr, logger.value().get());
  // Everything misses latency: burn 10 >= slow threshold 6 → one WARN,
  // however many times the state is re-evaluated.
  for (int i = 0; i < 50; ++i) {
    engine.ObserveAt("m", 5'000.0, /*ok=*/true, kBaseUs + i * 1'000);
  }
  engine.RefreshGaugesAt(kBaseUs);
  engine.RefreshGaugesAt(kBaseUs + kSecond);
  // Window rolls empty → burn back to 0 → one INFO clear.
  engine.RefreshGaugesAt(kBaseUs + (600 + 30) * kSecond);
  engine.RefreshGaugesAt(kBaseUs + (600 + 40) * kSecond);

  const std::vector<std::string> lines = ReadLines(path);
  EXPECT_EQ(CountContaining(lines, "\"event\":\"slo.burn\""), 1u);
  EXPECT_EQ(CountContaining(lines, "\"event\":\"slo.burn_clear\""), 1u);
  EXPECT_EQ(CountContaining(lines, "\"model\":\"m\""), 2u);
  EXPECT_EQ(CountContaining(lines, "\"slo\":\"latency\""), 2u);
}

TEST(SloEngineTest, ModelCapCollapsesIntoOther) {
  Registry registry;
  SloConfig config = TightConfig();
  config.max_models = 2;
  SloEngine engine(config, &registry, nullptr);
  engine.ObserveAt("a", 10.0, true, kBaseUs);
  engine.ObserveAt("b", 10.0, true, kBaseUs);
  engine.ObserveAt("c", 10.0, true, kBaseUs);  // Over the cap.
  engine.ObserveAt("d", 10.0, true, kBaseUs);  // Shares c's sink.
  const std::string sloz = engine.SlozJsonAt(kBaseUs);
  auto doc = server::Json::Parse(sloz);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const server::Json* models = doc.value().Find("models");
  ASSERT_NE(models, nullptr);
  EXPECT_NE(models->Find("a"), nullptr);
  EXPECT_NE(models->Find("b"), nullptr);
  EXPECT_EQ(models->Find("c"), nullptr);
  const server::Json* other = models->Find("__other__");
  ASSERT_NE(other, nullptr);
  const server::Json* latency = other->Find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->Find("window_total")->number_value(), 2.0);
}

TEST(SloEngineTest, SlozJsonCarriesConfigAndWindowCounts) {
  Registry registry;
  SloEngine engine(TightConfig(), &registry, nullptr);
  for (int i = 0; i < 8; ++i) {
    engine.ObserveAt("m", 500.0, true, kBaseUs);
  }
  engine.ObserveAt("m", 9'000.0, true, kBaseUs);
  engine.ObserveAt("m", 9'000.0, false, kBaseUs);
  auto doc = server::Json::Parse(engine.SlozJsonAt(kBaseUs));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const server::Json* m = doc.value().Find("models")->Find("m");
  ASSERT_NE(m, nullptr);
  const server::Json* latency = m->Find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->Find("threshold_us")->number_value(), 1'000.0);
  EXPECT_EQ(latency->Find("target")->number_value(), 0.9);
  EXPECT_EQ(latency->Find("window_s")->number_value(), 3600.0);
  EXPECT_EQ(latency->Find("window_total")->number_value(), 10.0);
  EXPECT_EQ(latency->Find("window_bad")->number_value(), 2.0);
  EXPECT_DOUBLE_EQ(latency->Find("burn_rate_slow")->number_value(), 2.0);
  EXPECT_EQ(latency->Find("burning")->bool_value(), false);
  const server::Json* availability = m->Find("availability");
  ASSERT_NE(availability, nullptr);
  EXPECT_EQ(availability->Find("window_bad")->number_value(), 1.0);
  EXPECT_EQ(availability->Find("threshold_us"), nullptr);
}

TEST(SloEngineTest, GaugesAppearInPrometheusExposition) {
  Registry registry;
  SloEngine engine(TightConfig(), &registry, nullptr);
  engine.ObserveAt("alpha", 10.0, true, kBaseUs);
  engine.RefreshGaugesAt(kBaseUs);
  const std::string text = DumpText(registry);
  EXPECT_NE(text.find("karl_slo_burn_rate{model=\"alpha\",slo=\"latency\","
                      "window=\"fast\"} "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("karl_slo_error_budget_remaining{model=\"alpha\","
                      "slo=\"availability\"} "),
            std::string::npos)
      << text;
}

TEST(SloEngineTest, ImpossibleTargetBurnsAtTheCapNotInfinity) {
  Registry registry;
  SloConfig config = TightConfig();
  config.default_objective.latency_target = 1.0;  // Zero budget.
  SloEngine engine(config, &registry, nullptr);
  engine.ObserveAt("m", 5'000.0, true, kBaseUs);
  engine.RefreshGaugesAt(kBaseUs);
  const LabelSet latency{{"model", "m"}, {"slo", "latency"}};
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("karl_slo_burn_rate",
                        LabelSet(latency).Set("window", "fast"))
          ->value(),
      SloEngine::kBurnRateCap);
}

// ------------------------------------------------------ slo_config.h

TEST(SloConfigParseTest, EmptyObjectYieldsDefaults) {
  auto config = server::ParseSloConfig("{}");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config.value().default_objective.latency_threshold_us,
            100'000.0);
  EXPECT_EQ(config.value().default_objective.window_s, 3600u);
  EXPECT_EQ(config.value().max_models, 64u);
  EXPECT_TRUE(config.value().per_model.empty());
}

TEST(SloConfigParseTest, ModelOverridesInheritTheParsedDefault) {
  // "models" precedes "default" on purpose: inheritance must not depend
  // on member order.
  const char* text = R"({
    "models": {"alpha": {"latency_threshold_us": 5000}},
    "default": {"latency_target": 0.95, "window_s": 600},
    "max_models": 8
  })";
  auto config = server::ParseSloConfig(text);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config.value().max_models, 8u);
  const telemetry::SloObjective& alpha = config.value().ForModel("alpha");
  EXPECT_EQ(alpha.latency_threshold_us, 5'000.0);
  EXPECT_EQ(alpha.latency_target, 0.95);  // Inherited from default.
  EXPECT_EQ(alpha.window_s, 600u);        // Inherited from default.
  EXPECT_EQ(config.value().ForModel("beta").latency_threshold_us,
            100'000.0);
}

TEST(SloConfigParseTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "not json",
      "[]",
      R"({"bogus_key": 1})",
      R"({"default": {"bogus": 1}})",
      R"({"default": {"latency_threshold_us": 0}})",
      R"({"default": {"latency_target": 1.0}})",
      R"({"default": {"availability_target": 0}})",
      R"({"default": {"window_s": 30}})",
      R"({"default": {"window_s": 600.5}})",
      R"({"default": {"fast_burn_threshold": 0}})",
      R"({"default": {"latency_target": "fast"}})",
      R"({"default": []})",
      R"({"max_models": 0})",
      R"({"max_models": 2.5})",
      R"({"models": []})",
      R"({"models": {"": {}}})",
      R"({"models": {"alpha": {"latency_target": 2.0}}})",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(server::ParseSloConfig(text).ok()) << text;
  }
}

TEST(SloConfigParseTest, LoadReadsAFileAndFailsCleanlyWhenMissing) {
  const std::string path = TempPath("slo_config.json");
  {
    std::ofstream out(path);
    out << R"({"default": {"latency_threshold_us": 250}})";
  }
  auto config = server::LoadSloConfigFile(path);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config.value().default_objective.latency_threshold_us, 250.0);
  EXPECT_FALSE(server::LoadSloConfigFile(path + ".does-not-exist").ok());
}

}  // namespace
}  // namespace karl::telemetry
