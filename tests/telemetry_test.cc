// Unit tests for the telemetry subsystem: counter/gauge semantics,
// histogram bucket layout and quantile accuracy, registry behavior,
// concurrent mutation (run under the debug-tsan preset to prove the hot
// path is race-free), trace recording, and exposition-format validity.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "telemetry/context.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/rolling.h"
#include "telemetry/trace.h"

namespace karl::telemetry {
namespace {

// Minimal recursive-descent JSON syntax checker — enough to assert the
// exposition strings are well-formed without an external parser.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch == '\\') {
        pos_ += 2;
        continue;
      }
      if (ch == '"') {
        ++pos_;
        return true;
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CounterTest, IncrementAndAdd) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Add(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), 2.25);
  g.Set(-7.0);
  EXPECT_DOUBLE_EQ(g.value(), -7.0);
}

TEST(HistogramLayoutTest, BoundsBracketTheirValues) {
  // Every sampled value must land in a bucket whose [lower, upper) range
  // contains it, and the index must be monotone in the value.
  const std::vector<double> samples = {1e-9, 0.001, 0.5,  1.0,   1.5,
                                       2.0,  100.0, 1e6,  1e9,   3e11};
  int prev = -1;
  for (const double v : samples) {
    const int idx = HistogramBucketIndex(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, kHistogramBuckets);
    EXPECT_LE(HistogramBucketLowerBound(idx), v) << "value " << v;
    EXPECT_LT(v, HistogramBucketUpperBound(idx)) << "value " << v;
    EXPECT_GE(idx, prev) << "index not monotone at value " << v;
    prev = idx;
  }
}

TEST(HistogramLayoutTest, EdgeValuesUseSentinelBuckets) {
  // Non-positive and sub-range values fall in the underflow bucket 0;
  // values at or beyond 2^40 in the overflow bucket.
  EXPECT_EQ(HistogramBucketIndex(0.0), 0);
  EXPECT_EQ(HistogramBucketIndex(-5.0), 0);
  EXPECT_EQ(HistogramBucketIndex(std::ldexp(1.0, kHistogramMinPow2 - 1)), 0);
  EXPECT_EQ(HistogramBucketIndex(std::ldexp(1.0, kHistogramMaxPow2)),
            kHistogramBuckets - 1);
  EXPECT_EQ(HistogramBucketIndex(1e300), kHistogramBuckets - 1);
  EXPECT_DOUBLE_EQ(HistogramBucketLowerBound(0), 0.0);
  EXPECT_TRUE(std::isinf(HistogramBucketUpperBound(kHistogramBuckets - 1)));
}

TEST(HistogramLayoutTest, OctaveBoundariesAreExactPowersOfTwo) {
  // 1.0 = 2^0 starts a bucket, and each octave spans exactly
  // kHistogramSubBucketsPerOctave buckets.
  const int one = HistogramBucketIndex(1.0);
  EXPECT_DOUBLE_EQ(HistogramBucketLowerBound(one), 1.0);
  const int two = HistogramBucketIndex(2.0);
  EXPECT_EQ(two - one, kHistogramSubBucketsPerOctave);
  EXPECT_DOUBLE_EQ(HistogramBucketLowerBound(two), 2.0);
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h;
  h.Record(2.0);
  h.Record(8.0);
  h.Record(4.0);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 14.0);
  EXPECT_DOUBLE_EQ(snap.min, 2.0);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  const HistogramSnapshot snap = Histogram().Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantilesOfKnownDistribution) {
  // Uniform 1..1000: with ~19%-wide buckets and geometric interpolation
  // the mid-range quantiles must land within ~15% of the exact order
  // statistics; the extremes are tracked exactly.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 1000.0);
  EXPECT_NEAR(snap.Quantile(0.5), 500.0, 0.15 * 500.0);
  EXPECT_NEAR(snap.Quantile(0.95), 950.0, 0.15 * 950.0);
  EXPECT_NEAR(snap.Quantile(0.99), 990.0, 0.15 * 990.0);
  // Quantiles are monotone in q.
  EXPECT_LE(snap.Quantile(0.5), snap.Quantile(0.95));
  EXPECT_LE(snap.Quantile(0.95), snap.Quantile(0.99));
}

TEST(HistogramTest, SingleValueQuantilesCollapse) {
  Histogram h;
  h.Record(7.0);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 7.0);
}

TEST(RegistryTest, SameNameReturnsSameHandle) {
  Registry registry;
  Counter* c1 = registry.GetCounter("events_total");
  Counter* c2 = registry.GetCounter("events_total");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.GetGauge("depth"), nullptr);
  EXPECT_NE(registry.GetHistogram("latency"), nullptr);
}

TEST(RegistryTest, SnapshotIsSortedAndComplete) {
  Registry registry;
  registry.GetCounter("zeta_total")->Add(3);
  registry.GetCounter("alpha_total")->Add(1);
  registry.GetGauge("depth")->Set(4.0);
  registry.GetHistogram("latency")->Record(2.0);
  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha_total");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "zeta_total");
  EXPECT_EQ(snap.counters[1].second, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 4.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

TEST(RegistryTest, ConcurrentMutationIsExact) {
  // 8 threads hammer one counter, one gauge, and one histogram through
  // shared handles; totals must come out exact. Under debug-tsan this is
  // also the data-race proof for the hot path.
  Registry registry;
  Counter* counter = registry.GetCounter("hits_total");
  Gauge* gauge = registry.GetGauge("level");
  Histogram* histogram = registry.GetHistogram("latency");
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter->Increment();
        gauge->Add(1.0);
        histogram->Record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->value(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(gauge->value(), static_cast<double>(kThreads) * kIters);
  const HistogramSnapshot snap = histogram->Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kThreads));
}

TEST(ExpositionTest, DumpTextHasTypesAndQuantiles) {
  Registry registry;
  registry.GetCounter("requests_total")->Add(5);
  registry.GetGauge("depth")->Set(2.5);
  for (int i = 1; i <= 100; ++i) {
    registry.GetHistogram("latency_usec")->Record(static_cast<double>(i));
  }
  const std::string text = DumpText(registry);
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("latency_usec{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("latency_usec_count 100"), std::string::npos);
  EXPECT_NE(text.find("latency_usec_sum"), std::string::npos);
}

TEST(ExpositionTest, DumpJsonIsValidJson) {
  Registry registry;
  registry.GetCounter("a_total")->Add(1);
  registry.GetGauge("g")->Set(-0.5);
  registry.GetHistogram("h")->Record(3.0);
  const std::string json = DumpJson(registry);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(ExpositionTest, EmptyRegistryDumpsAreValid) {
  Registry registry;
  EXPECT_TRUE(JsonChecker(DumpJson(registry)).Valid());
  EXPECT_EQ(DumpText(registry), "");
}

TEST(ExpositionTest, WriteMetricsFilePicksFormatByExtension) {
  Registry registry;
  registry.GetCounter("writes_total")->Increment();
  const std::string json_path =
      ::testing::TempDir() + "/telemetry_test_metrics.json";
  const std::string text_path =
      ::testing::TempDir() + "/telemetry_test_metrics.prom";
  ASSERT_TRUE(WriteMetricsFile(registry, json_path).ok());
  ASSERT_TRUE(WriteMetricsFile(registry, text_path).ok());
  const std::string json = ReadFile(json_path);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(ReadFile(text_path).find("# TYPE writes_total counter"),
            std::string::npos);
  std::remove(json_path.c_str());
  std::remove(text_path.c_str());
}

TEST(ExpositionTest, WriteMetricsFileIsAtomicUnderConcurrentReads) {
  // The writer publishes via temp-file + rename, so a concurrent reader
  // must always see a complete, parseable document — never a torn or
  // empty one.
  Registry registry;
  auto* counter = registry.GetCounter("atomic_writes_total");
  const std::string path =
      ::testing::TempDir() + "/telemetry_test_atomic.json";
  ASSERT_TRUE(WriteMetricsFile(registry, path).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn_reads{0};
  std::atomic<int> good_reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string text = ReadFile(path);
      if (text.empty() || !JsonChecker(text).Valid()) {
        torn_reads.fetch_add(1, std::memory_order_relaxed);
      } else {
        good_reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (int i = 0; i < 200; ++i) {
    counter->Increment();
    ASSERT_TRUE(WriteMetricsFile(registry, path).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_GT(good_reads.load(), 0);
  // The temp file never outlives a successful publish.
  EXPECT_TRUE(ReadFile(path + ".tmp-" + std::to_string(::getpid())).empty());
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, RecordsAllEventShapes) {
  TraceRecorder recorder;
  const uint64_t t0 = recorder.NowMicros();
  recorder.CompleteEvent("query", t0, 12, {{"iterations", 3.0}});
  recorder.CounterEvent("karl.bounds", t0 + 1, {{"lb", 0.5}, {"ub", 1.5}});
  recorder.InstantEvent("rebuild", t0 + 2, {});
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.dropped(), 0u);
  const std::string json = recorder.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  EXPECT_NE(json.find("\"iterations\""), std::string::npos);
}

TEST(TraceRecorderTest, CapDropsInsteadOfGrowing) {
  TraceRecorder recorder(2);
  for (int i = 0; i < 5; ++i) {
    recorder.InstantEvent("e", static_cast<uint64_t>(i), {});
  }
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 3u);
  const std::string json = recorder.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"droppedEvents\": 3"), std::string::npos);
}

TEST(TraceRecorderTest, WriteJsonRoundTripsThroughDisk) {
  TraceRecorder recorder;
  recorder.CompleteEvent("query", 0, 5, {{"result", 1.0}});
  const std::string path = ::testing::TempDir() + "/telemetry_test_trace.json";
  ASSERT_TRUE(recorder.WriteJson(path).ok());
  const std::string json = ReadFile(path);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, FlowEventsCarryCategoryIdAndBindingPoint) {
  TraceRecorder recorder;
  recorder.FlowEvent(TraceRecorder::FlowPhase::kStart, 42, 10);
  recorder.FlowEvent(TraceRecorder::FlowPhase::kStep, 42, 20);
  recorder.FlowEvent(TraceRecorder::FlowPhase::kEnd, 42, 30);
  const std::string json = recorder.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  // Perfetto matches flows by (cat, name, id); the end event binds to
  // its enclosing slice.
  EXPECT_NE(json.find("\"cat\": \"req\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
}

TEST(TraceRecorderTest, DroppedEventsSurfaceAsAMetricCounter) {
  Registry registry;
  TraceRecorder recorder(2);
  recorder.AttachMetrics(&registry);
  for (int i = 0; i < 5; ++i) {
    recorder.InstantEvent("e", static_cast<uint64_t>(i), {});
  }
  EXPECT_EQ(recorder.dropped(), 3u);
  EXPECT_EQ(registry.GetCounter("karl_trace_dropped_events")->value(), 3u);
}

TEST(RequestContextTest, StageDurationsSaturateAndChain) {
  RequestContext ctx;
  ctx.read_begin_us = 100;
  ctx.framed_us = 110;
  ctx.admitted_us = 115;
  ctx.dispatched_us = 140;
  ctx.eval_begin_us = 150;
  ctx.eval_end_us = 250;
  ctx.serialized_us = 260;
  ctx.write_begin_us = 270;
  ctx.write_end_us = 300;
  EXPECT_EQ(ctx.read_us(), 10u);
  EXPECT_EQ(ctx.parse_us(), 5u);
  EXPECT_EQ(ctx.queue_wait_us(), 25u);
  EXPECT_EQ(ctx.coalesce_wait_us(), 10u);
  EXPECT_EQ(ctx.eval_us(), 100u);
  EXPECT_EQ(ctx.serialize_us(), 10u);
  EXPECT_EQ(ctx.write_us(), 30u);
  EXPECT_EQ(ctx.total_us(), 200u);
  // Unset (zero) or inverted stamps saturate to zero instead of
  // wrapping to huge unsigned values.
  RequestContext empty;
  EXPECT_EQ(empty.read_us(), 0u);
  EXPECT_EQ(empty.total_us(), 0u);
  empty.eval_begin_us = 50;
  empty.eval_end_us = 40;
  EXPECT_EQ(empty.eval_us(), 0u);
}

TEST(RequestContextTest, NextRequestIdIsMonotonicAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] {
      ids[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) ids[t].push_back(NextRequestId());
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::vector<uint64_t> all;
  for (const auto& chunk : ids) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "request ids must be unique";
}

TEST(FlightRecorderTest, RingEvictsOldestAndSnapshotsInOrder) {
  FlightRecorder recorder(3);
  EXPECT_EQ(recorder.capacity(), 3u);
  for (uint64_t i = 1; i <= 5; ++i) {
    RequestRecord record;
    record.ctx.id = i;
    record.kind = "exact";
    record.rows = i;
    recorder.Record(std::move(record));
  }
  EXPECT_EQ(recorder.total_recorded(), 5u);
  const std::vector<RequestRecord> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);  // Oldest two were evicted.
  EXPECT_EQ(snapshot[0].ctx.id, 3u);
  EXPECT_EQ(snapshot[1].ctx.id, 4u);
  EXPECT_EQ(snapshot[2].ctx.id, 5u);
}

TEST(FlightRecorderTest, PartialRingSnapshotsWhatExists) {
  FlightRecorder recorder(8);
  RequestRecord record;
  record.ctx.id = 7;
  record.client_id = "only";
  recorder.Record(std::move(record));
  const std::vector<RequestRecord> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].ctx.id, 7u);
  EXPECT_EQ(snapshot[0].client_id, "only");
  EXPECT_EQ(recorder.total_recorded(), 1u);
}

TEST(FlightRecorderTest, ZeroCapacityIsClampedToOne) {
  FlightRecorder recorder(0);
  EXPECT_EQ(recorder.capacity(), 1u);
  RequestRecord record;
  record.ctx.id = 1;
  recorder.Record(std::move(record));
  EXPECT_EQ(recorder.Snapshot().size(), 1u);
}

TEST(RollingHistogramTest, EmptyHistogramReportsZeroEverywhere) {
  RollingHistogram h;
  EXPECT_EQ(h.count(), 0u);
  const HistogramSnapshot cumulative = h.CumulativeSnapshot();
  EXPECT_EQ(cumulative.count, 0u);
  EXPECT_EQ(cumulative.min, 0.0);
  EXPECT_EQ(cumulative.max, 0.0);
  const HistogramSnapshot window = h.WindowSnapshotAt(0);
  EXPECT_EQ(window.count, 0u);
  EXPECT_EQ(window.min, 0.0);
  EXPECT_EQ(window.max, 0.0);
  EXPECT_EQ(window.Quantile(0.95), 0.0);
}

TEST(RollingHistogramTest, WindowSpanIsSixtySeconds) {
  EXPECT_EQ(RollingHistogram::WindowSpanSeconds(), 60u);
}

TEST(RollingHistogramTest, RecordLandsInBothViews) {
  RollingHistogram h;
  h.Record(25.0);  // Wall clock: just recorded, so still in-window.
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.CumulativeSnapshot().count, 1u);
  const HistogramSnapshot window = h.WindowSnapshot();
  EXPECT_EQ(window.count, 1u);
  EXPECT_EQ(window.min, 25.0);
  EXPECT_EQ(window.max, 25.0);
}

TEST(RollingHistogramTest, OldRecordsAgeOutOfWindowButNotCumulative) {
  RollingHistogram h;
  const uint64_t t0 = 1000 * RollingHistogram::kSubWindowUs;
  h.RecordAt(10.0, t0);
  h.RecordAt(20.0, t0 + 1);

  HistogramSnapshot window = h.WindowSnapshotAt(t0 + 2);
  EXPECT_EQ(window.count, 2u);
  EXPECT_EQ(window.min, 10.0);
  EXPECT_EQ(window.max, 20.0);
  EXPECT_NEAR(window.sum, 30.0, 1e-12);

  // One full window later the records are outside the merge horizon.
  const uint64_t later =
      t0 + RollingHistogram::kMergedSubWindows * RollingHistogram::kSubWindowUs;
  window = h.WindowSnapshotAt(later);
  EXPECT_EQ(window.count, 0u);

  // The cumulative view never forgets.
  const HistogramSnapshot cumulative = h.CumulativeSnapshot();
  EXPECT_EQ(cumulative.count, 2u);
  EXPECT_EQ(cumulative.min, 10.0);
  EXPECT_EQ(cumulative.max, 20.0);
}

TEST(RollingHistogramTest, WindowMergesAdjacentSubWindows) {
  RollingHistogram h;
  const uint64_t t0 = 50 * RollingHistogram::kSubWindowUs;
  // One sample per sub-window across a full merge horizon.
  for (int i = 0; i < RollingHistogram::kMergedSubWindows; ++i) {
    h.RecordAt(static_cast<double>(i + 1),
               t0 + static_cast<uint64_t>(i) * RollingHistogram::kSubWindowUs);
  }
  const uint64_t end =
      t0 + static_cast<uint64_t>(RollingHistogram::kMergedSubWindows - 1) *
               RollingHistogram::kSubWindowUs;
  HistogramSnapshot window = h.WindowSnapshotAt(end);
  EXPECT_EQ(window.count,
            static_cast<uint64_t>(RollingHistogram::kMergedSubWindows));
  EXPECT_EQ(window.min, 1.0);
  EXPECT_EQ(window.max, 6.0);

  // Advance one sub-window: the oldest sample falls out, the rest stay.
  window = h.WindowSnapshotAt(end + RollingHistogram::kSubWindowUs);
  EXPECT_EQ(window.count,
            static_cast<uint64_t>(RollingHistogram::kMergedSubWindows - 1));
  EXPECT_EQ(window.min, 2.0);
  EXPECT_EQ(window.max, 6.0);
}

TEST(RollingHistogramTest, WheelSlotReuseClearsStaleCounts) {
  RollingHistogram h;
  const uint64_t t0 = 7 * RollingHistogram::kSubWindowUs;
  h.RecordAt(5.0, t0);
  // kWheelSlots epochs later the same physical slot is recycled; the
  // stale epoch-7 contents must not leak into the new window.
  const uint64_t t1 =
      t0 + RollingHistogram::kWheelSlots * RollingHistogram::kSubWindowUs;
  h.RecordAt(9.0, t1);
  const HistogramSnapshot window = h.WindowSnapshotAt(t1);
  EXPECT_EQ(window.count, 1u);
  EXPECT_EQ(window.min, 9.0);
  EXPECT_EQ(window.max, 9.0);
  EXPECT_EQ(h.CumulativeSnapshot().count, 2u);
}

TEST(RollingHistogramTest, WindowQuantilesTrackRecentValuesOnly) {
  RollingHistogram h;
  const uint64_t t0 = 200 * RollingHistogram::kSubWindowUs;
  // An old regime of slow samples...
  for (int i = 0; i < 100; ++i) h.RecordAt(10000.0, t0);
  // ...then, ten sub-windows later, a fast regime.
  const uint64_t t1 = t0 + 10 * RollingHistogram::kSubWindowUs;
  for (int i = 0; i < 100; ++i) h.RecordAt(10.0, t1);

  const HistogramSnapshot window = h.WindowSnapshotAt(t1);
  EXPECT_EQ(window.count, 100u);
  EXPECT_LT(window.Quantile(0.99), 100.0);  // Only the fast regime.
  // The cumulative p50 straddles both regimes' total mass.
  const HistogramSnapshot cumulative = h.CumulativeSnapshot();
  EXPECT_EQ(cumulative.count, 200u);
  EXPECT_GT(cumulative.Quantile(0.99), 1000.0);
}

TEST(RollingHistogramTest, ConcurrentRecordsKeepCumulativeExact) {
  RollingHistogram h;
  constexpr int kThreads = 4;
  constexpr int kEpochs = 32;
  constexpr int kPerEpoch = 50;
  std::vector<std::thread> threads;
  // All threads walk the same epoch sequence, racing on rotation. The
  // windowed view tolerates perturbation (documented race); the
  // cumulative count must stay exact.
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (uint64_t e = 0; e < kEpochs; ++e) {
        for (int i = 0; i < kPerEpoch; ++i) {
          h.RecordAt(3.0, e * RollingHistogram::kSubWindowUs +
                              static_cast<uint64_t>(i));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.count(),
            static_cast<uint64_t>(kThreads) * kEpochs * kPerEpoch);
  EXPECT_EQ(h.CumulativeSnapshot().count, h.count());
}

TEST(RegistryTest, RollingHistogramExposition) {
  Registry registry;
  RollingHistogram* h = registry.GetRollingHistogram("karl_test_stage_us");
  EXPECT_EQ(h, registry.GetRollingHistogram("karl_test_stage_us"));
  h->Record(42.0);
  h->Record(84.0);

  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.rolling.size(), 1u);
  EXPECT_EQ(snapshot.rolling[0].first, "karl_test_stage_us");
  EXPECT_EQ(snapshot.rolling[0].second.cumulative.count, 2u);
  EXPECT_EQ(snapshot.rolling[0].second.window_span_s, 60u);

  const std::string text = DumpText(registry);
  // Cumulative summary under the bare name...
  EXPECT_NE(text.find("karl_test_stage_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("karl_test_stage_us_count 2"), std::string::npos);
  // ...plus the windowed twin.
  EXPECT_NE(text.find("karl_test_stage_us_window60s{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(text.find("karl_test_stage_us_window60s_count"),
            std::string::npos);

  const std::string json = DumpJson(registry);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"window60s\""), std::string::npos);
}

TEST(GlobalRegistryTest, IsASingleton) {
  EXPECT_EQ(&GlobalRegistry(), &GlobalRegistry());
}

// ------------------------------------------------------------ labels

TEST(LabelSetTest, RendersSortedAndEscaped) {
  LabelSet labels{{"op", "query"}, {"model", "home\"1\""}};
  EXPECT_EQ(labels.Render(), "{model=\"home\\\"1\\\"\",op=\"query\"}");
  EXPECT_EQ(LabelSet{}.Render(), "");
  LabelSet tricky{{"path", "a\\b"}, {"note", "line\nbreak"}};
  EXPECT_EQ(tricky.Render(),
            "{note=\"line\\nbreak\",path=\"a\\\\b\"}");
}

TEST(LabelSetTest, SetInsertsInSortedOrder) {
  LabelSet labels{{"model", "m"}};
  labels.Set("window", "fast").Set("slo", "latency");
  EXPECT_EQ(labels.Render(),
            "{model=\"m\",slo=\"latency\",window=\"fast\"}");
}

TEST(LabelSetTest, OverflowReplacesEveryValue) {
  const LabelSet labels{{"model", "m"}, {"op", "query"}};
  EXPECT_EQ(labels.Overflow().Render(),
            "{model=\"__other__\",op=\"__other__\"}");
}

TEST(LabelSetTest, SeriesNameSurgeryBindsSuffixesBeforeTheLabelBlock) {
  const SeriesNameParts parts =
      SplitSeriesName("karl_x_us{model=\"a\"}");
  EXPECT_EQ(parts.base, "karl_x_us");
  EXPECT_EQ(parts.labels, "{model=\"a\"}");
  EXPECT_EQ(SeriesWithSuffix("karl_x_us{model=\"a\"}", "_sum"),
            "karl_x_us_sum{model=\"a\"}");
  EXPECT_EQ(SeriesWithSuffix("karl_x_us", "_sum"), "karl_x_us_sum");
  EXPECT_EQ(SeriesWithLabel("karl_x_us{model=\"a\"}", "quantile", "0.5"),
            "karl_x_us{model=\"a\",quantile=\"0.5\"}");
  EXPECT_EQ(SeriesWithLabel("karl_x_us", "quantile", "0.5"),
            "karl_x_us{quantile=\"0.5\"}");
}

TEST(RegistryLabelsTest, LabeledSeriesAreDistinctAndInterned) {
  Registry registry;
  Counter* plain = registry.GetCounter("karl_l_total");
  Counter* alpha =
      registry.GetCounter("karl_l_total", LabelSet{{"model", "alpha"}});
  Counter* beta =
      registry.GetCounter("karl_l_total", LabelSet{{"model", "beta"}});
  EXPECT_NE(plain, alpha);
  EXPECT_NE(alpha, beta);
  EXPECT_EQ(alpha,
            registry.GetCounter("karl_l_total", LabelSet{{"model", "alpha"}}));
  alpha->Add(2);
  beta->Increment();
  plain->Add(3);
  const std::string text = DumpText(registry);
  EXPECT_NE(text.find("karl_l_total 3"), std::string::npos) << text;
  EXPECT_NE(text.find("karl_l_total{model=\"alpha\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("karl_l_total{model=\"beta\"} 1"), std::string::npos)
      << text;
  // One family, one TYPE declaration.
  size_t type_lines = 0;
  size_t pos = 0;
  while ((pos = text.find("# TYPE karl_l_total counter", pos)) !=
         std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST(RegistryLabelsTest, CardinalityCapRedirectsToOtherAndCounts) {
  Registry registry;
  registry.SetMaxSeriesPerMetric(2);
  Counter* a = registry.GetCounter("karl_cap_total", LabelSet{{"m", "a"}});
  Counter* b = registry.GetCounter("karl_cap_total", LabelSet{{"m", "b"}});
  // Third and fourth distinct label sets collapse into the sink series.
  Counter* c = registry.GetCounter("karl_cap_total", LabelSet{{"m", "c"}});
  Counter* d = registry.GetCounter("karl_cap_total", LabelSet{{"m", "d"}});
  Counter* other = registry.GetCounter("karl_cap_total",
                                       LabelSet{{"m", "__other__"}});
  EXPECT_NE(a, b);
  EXPECT_EQ(c, other);
  EXPECT_EQ(d, other);
  // Established series stay reachable after the cap is hit.
  EXPECT_EQ(a, registry.GetCounter("karl_cap_total", LabelSet{{"m", "a"}}));
  EXPECT_EQ(
      registry.GetCounter("karl_metric_series_dropped_total")->value(), 2u);
  c->Increment();
  d->Increment();
  const std::string text = DumpText(registry);
  EXPECT_NE(text.find("karl_cap_total{m=\"__other__\"} 2"),
            std::string::npos)
      << text;
}

TEST(RegistryLabelsTest, LabeledRollingHistogramExposition) {
  Registry registry;
  RollingHistogram* h = registry.GetRollingHistogram(
      "karl_lab_us", LabelSet{{"model", "alpha"}});
  h->Record(42.0);
  registry.GetRollingHistogram("karl_lab_us")->Record(7.0);

  const std::string text = DumpText(registry);
  // Quantile merges into the existing label block; _sum/_count and the
  // window suffix bind to the name before it.
  EXPECT_NE(text.find("karl_lab_us{model=\"alpha\",quantile=\"0.5\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("karl_lab_us_count{model=\"alpha\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("karl_lab_us_window60s{model=\"alpha\",quantile=\"0.95\"}"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("karl_lab_us_window60s_count{model=\"alpha\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("karl_lab_us_count 1"), std::string::npos) << text;
  // One TYPE line for the whole family, before any of its samples.
  size_t type_lines = 0;
  size_t pos = 0;
  while ((pos = text.find("# TYPE karl_lab_us summary", pos)) !=
         std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u);
  const std::string json = DumpJson(registry);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST(RegistryLabelsTest, ConcurrentLabeledRecordsSurviveSeriesChurn) {
  // The hot-reload shape: worker threads hammer established labeled
  // handles while another thread keeps interning fresh labeled series
  // (what a reload's per-model re-resolution does) and scraping. The
  // established series' cumulative counts must stay exact.
  Registry registry;
  constexpr int kWriters = 4;
  constexpr int kRecords = 2000;
  RollingHistogram* histograms[kWriters];
  for (int t = 0; t < kWriters; ++t) {
    histograms[t] = registry.GetRollingHistogram(
        "karl_churn_us", LabelSet{{"model", "model" + std::to_string(t)}});
  }
  std::atomic<bool> stop{false};
  std::thread churn([&registry, &stop] {
    int generation = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      registry.GetRollingHistogram(
          "karl_churn_us",
          LabelSet{{"model", "gen" + std::to_string(generation++ % 50)}});
      registry.GetCounter("karl_churn_reloads_total")->Increment();
      const std::string text = DumpText(registry);
      ASSERT_FALSE(text.empty());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([h = histograms[t]] {
      for (int i = 0; i < kRecords; ++i) h->Record(1.0 + i);
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  churn.join();
  for (int t = 0; t < kWriters; ++t) {
    EXPECT_EQ(histograms[t]->count(), static_cast<uint64_t>(kRecords));
  }
}

}  // namespace
}  // namespace karl::telemetry
