// Concurrency stress tests for util::ThreadPool: task completion,
// ParallelFor coverage/slot contracts, exception propagation, and
// shutdown-under-load. Designed to run under the debug-tsan preset (CI
// job tsan-batch) as well as the plain presets.
//
// KARL_TEST_THREADS (default 8) sets the worker count for the stress
// cases so CI can pin oversubscription independently of the host.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace karl::util {
namespace {

size_t TestThreads() {
  const char* env = std::getenv("KARL_TEST_THREADS");
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 8;
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(TestThreads());
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor drains the queues before joining.
  }
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPoolTest, ShutdownUnderLoadDrainsEverything) {
  // Tasks still queued (and still running) when the destructor starts
  // must all complete: shutdown is draining, not abandoning.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(TestThreads());
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // Destructor races the sleeping workers.
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, SubmitFromWorkerTask) {
  // Tasks enqueued by running tasks are part of the drain set.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(TestThreads());
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&pool, &ran] {
        pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(TestThreads());
  constexpr size_t kN = 10007;  // Prime: never divides evenly into chunks.
  std::vector<std::atomic<int>> hits(kN);
  for (const size_t chunk : {size_t{0}, size_t{1}, size_t{3}, size_t{4096},
                             size_t{20000}}) {
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    pool.ParallelFor(kN, chunk, [&hits](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "chunk=" << chunk << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 0, [&called](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSlotsAreInRangeAndExclusive) {
  // Slots must lie in [0, num_threads()] and, at any instant, at most
  // one executor holds a given slot — slot-indexed accumulators then
  // need no synchronisation. Verified by marking slots busy/free around
  // each body invocation.
  ThreadPool pool(TestThreads());
  const size_t slots = pool.num_threads() + 1;
  std::vector<std::atomic<int>> busy(slots);
  for (auto& b : busy) b.store(0, std::memory_order_relaxed);
  std::atomic<bool> ok{true};
  pool.ParallelFor(5000, 7, [&](size_t, size_t, size_t slot) {
    if (slot >= slots) {
      ok.store(false, std::memory_order_relaxed);
      return;
    }
    if (busy[slot].fetch_add(1, std::memory_order_acq_rel) != 0) {
      ok.store(false, std::memory_order_relaxed);  // Slot shared!
    }
    std::this_thread::yield();
    busy[slot].fetch_sub(1, std::memory_order_acq_rel);
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, ParallelForSlotLocalAccumulatorsSumExactly) {
  // The intended usage pattern of the slot contract: per-slot partial
  // sums with no atomics, merged after the call.
  ThreadPool pool(TestThreads());
  constexpr size_t kN = 20000;
  std::vector<uint64_t> partial(pool.num_threads() + 1, 0);
  pool.ParallelFor(kN, 13, [&partial](size_t begin, size_t end, size_t slot) {
    for (size_t i = begin; i < end; ++i) partial[slot] += i;
  });
  uint64_t total = 0;
  for (const uint64_t p : partial) total += p;
  EXPECT_EQ(total, uint64_t{kN} * (kN - 1) / 2);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(TestThreads());
  EXPECT_THROW(
      pool.ParallelFor(1000, 1,
                       [](size_t begin, size_t, size_t) {
                         if (begin == 500) {
                           throw std::runtime_error("boom at 500");
                         }
                       }),
      std::runtime_error);

  // The pool must remain fully usable after a thrown body.
  std::atomic<int> ran{0};
  pool.ParallelFor(100, 0, [&ran](size_t begin, size_t end, size_t) {
    ran.fetch_add(static_cast<int>(end - begin), std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ParallelForWorksOnSingleThreadPool) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(257, 0);  // Caller + 1 worker; plain ints are fine
  pool.ParallelFor(hits.size(), 10, [&hits](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.ParallelFor(10, 0, [&ran](size_t begin, size_t end, size_t) {
    ran.fetch_add(static_cast<int>(end - begin));
  });
  // ParallelFor returning guarantees its own 10; the Submit task is
  // guaranteed only after the destructor drain.
  EXPECT_GE(ran.load(), 10);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // The caller participates in the loop, so a body issuing its own
  // ParallelFor makes progress even when every worker is occupied.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, 1, [&](size_t, size_t, size_t) {
    pool.ParallelFor(16, 4, [&inner_total](size_t begin, size_t end, size_t) {
      inner_total.fetch_add(static_cast<int>(end - begin),
                            std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPoolTest, ConcurrentSubmittersStress) {
  // Many external threads hammering Submit while ParallelFor runs from
  // the main thread: exercises round-robin queues + stealing under
  // contention (the interesting TSan surface).
  std::atomic<int> ran{0};
  {
    ThreadPool pool(TestThreads());
    std::vector<std::thread> submitters;
    submitters.reserve(4);
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&pool, &ran] {
        for (int i = 0; i < 200; ++i) {
          pool.Submit(
              [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    pool.ParallelFor(1000, 3, [&ran](size_t begin, size_t end, size_t) {
      ran.fetch_add(static_cast<int>(end - begin), std::memory_order_relaxed);
    });
    for (auto& t : submitters) t.join();
  }
  EXPECT_EQ(ran.load(), 4 * 200 + 1000);
}

TEST(ThreadPoolTest, ManySequentialParallelForsReuseWorkers) {
  // Repeated small loops through one pool: catches lost-wakeup bugs
  // where a sleeping worker misses a notification and a loop hangs.
  ThreadPool pool(TestThreads());
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> ran{0};
    pool.ParallelFor(17, 2, [&ran](size_t begin, size_t end, size_t) {
      ran.fetch_add(static_cast<int>(end - begin), std::memory_order_relaxed);
    });
    ASSERT_EQ(ran.load(), 17) << "round " << round;
  }
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, AttachMetricsExportsSaturationGauges) {
  telemetry::Registry registry;
  auto* queue_depth = registry.GetGauge("karl_pool_queue_depth");
  auto* active = registry.GetGauge("karl_pool_active_workers");
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  {
    ThreadPool pool(2);
    pool.AttachMetrics(&registry);

    // Occupy both workers; each publishes the active gauge before its
    // task body runs, so started==2 implies active==2 was observed.
    for (int i = 0; i < 2; ++i) {
      pool.Submit([&started, &release] {
        started.fetch_add(1, std::memory_order_release);
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      });
    }
    while (started.load(std::memory_order_acquire) < 2) {
      std::this_thread::yield();
    }
    EXPECT_DOUBLE_EQ(active->value(), 2.0);

    // With every worker blocked, a third task must sit in the queue and
    // show up in the depth gauge.
    pool.Submit([] {});
    EXPECT_DOUBLE_EQ(queue_depth->value(), 1.0);

    release.store(true, std::memory_order_release);
  }  // Destructor drains; the gauges must return to idle.
  EXPECT_DOUBLE_EQ(queue_depth->value(), 0.0);
  EXPECT_DOUBLE_EQ(active->value(), 0.0);
}

}  // namespace
}  // namespace karl::util
