// Tests for offline and in-situ index tuning (§III-C).

#include <gtest/gtest.h>

#include <vector>

#include "core/tuning.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace karl::core {
namespace {

EngineOptions BaseOptions(double gamma) {
  EngineOptions options;
  options.kernel = KernelParams::Gaussian(gamma);
  return options;
}

data::Matrix SampleQueries(const data::Matrix& points, size_t count,
                           util::Rng& rng) {
  const auto rows = rng.SampleWithoutReplacement(points.rows(), count);
  return points.SelectRows(rows);
}

TEST(MeasureThroughputTest, PositiveForRealWork) {
  util::Rng rng(1);
  const data::Matrix pts = data::SampleClustered(500, 3, 3, 0.08, rng);
  auto engine = Engine::BuildUniform(pts, 1.0, BaseOptions(4.0)).ValueOrDie();
  const data::Matrix queries = SampleQueries(pts, 20, rng);
  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kThreshold;
  spec.tau = 1.0;
  EXPECT_GT(MeasureThroughput(engine, queries, spec), 0.0);
}

TEST(MeasureThroughputTest, ZeroForEmptyQuerySet) {
  util::Rng rng(2);
  const data::Matrix pts = data::SampleUniform(100, 2, 0.0, 1.0, rng);
  auto engine = Engine::BuildUniform(pts, 1.0, BaseOptions(1.0)).ValueOrDie();
  QuerySpec spec;
  EXPECT_DOUBLE_EQ(MeasureThroughput(engine, data::Matrix(), spec), 0.0);
}

TEST(DefaultGridTest, CoversBothKindsAndPaperCapacities) {
  const auto grid = DefaultTuningGrid();
  EXPECT_EQ(grid.size(), 14u);
  size_t kd = 0, ball = 0;
  for (const auto& cfg : grid) {
    (cfg.kind == index::IndexKind::kKdTree ? kd : ball) += 1;
    EXPECT_GE(cfg.leaf_capacity, 10u);
    EXPECT_LE(cfg.leaf_capacity, 640u);
  }
  EXPECT_EQ(kd, 7u);
  EXPECT_EQ(ball, 7u);
}

TEST(OfflineTuneTest, RejectsEmptyGrid) {
  util::Rng rng(3);
  const data::Matrix pts = data::SampleUniform(50, 2, 0.0, 1.0, rng);
  std::vector<double> weights(50, 1.0);
  EXPECT_FALSE(OfflineTune(pts, weights, BaseOptions(1.0), pts, QuerySpec{},
                           {})
                   .ok());
}

TEST(OfflineTuneTest, ReturnsBestOfGrid) {
  util::Rng rng(4);
  const data::Matrix pts = data::SampleClustered(2000, 3, 4, 0.06, rng);
  std::vector<double> weights(pts.rows(), 1.0);
  const data::Matrix queries = SampleQueries(pts, 30, rng);
  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kThreshold;
  spec.tau = 5.0;

  const std::vector<IndexConfig> grid = {
      {index::IndexKind::kKdTree, 16},
      {index::IndexKind::kKdTree, 128},
      {index::IndexKind::kBallTree, 64},
  };
  auto result =
      OfflineTune(pts, weights, BaseOptions(8.0), queries, spec, grid);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().candidates.size(), grid.size());

  // The reported best matches the max measured throughput.
  double best = -1.0;
  IndexConfig best_cfg;
  for (const auto& cand : result.value().candidates) {
    EXPECT_GT(cand.throughput_qps, 0.0);
    if (cand.throughput_qps > best) {
      best = cand.throughput_qps;
      best_cfg = cand.config;
    }
  }
  EXPECT_EQ(result.value().best.kind, best_cfg.kind);
  EXPECT_EQ(result.value().best.leaf_capacity, best_cfg.leaf_capacity);
}

TEST(InsituRunTest, RejectsBadSampleFraction) {
  util::Rng rng(5);
  const data::Matrix pts = data::SampleUniform(100, 2, 0.0, 1.0, rng);
  std::vector<double> weights(100, 1.0);
  QuerySpec spec;
  EXPECT_FALSE(
      InsituRun(pts, weights, BaseOptions(1.0), pts, spec, 0.0).ok());
  EXPECT_FALSE(
      InsituRun(pts, weights, BaseOptions(1.0), pts, spec, 1.0).ok());
}

TEST(InsituRunTest, ProducesEndToEndTimingAndLevel) {
  util::Rng rng(6);
  const data::Matrix pts = data::SampleClustered(3000, 3, 4, 0.06, rng);
  std::vector<double> weights(pts.rows(), 1.0);
  const data::Matrix queries = SampleQueries(pts, 200, rng);
  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kThreshold;
  spec.tau = 10.0;

  auto result =
      InsituRun(pts, weights, BaseOptions(8.0), queries, spec, 0.1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& r = result.value();
  EXPECT_GE(r.best_level, 2);
  EXPECT_GT(r.build_seconds, 0.0);
  EXPECT_GT(r.tuning_seconds, 0.0);
  EXPECT_GT(r.end_to_end_throughput, 0.0);
}

TEST(InsituRunTest, ApproximateSpecWorksToo) {
  util::Rng rng(7);
  const data::Matrix pts = data::SampleClustered(1500, 3, 3, 0.07, rng);
  std::vector<double> weights(pts.rows(), 1.0);
  const data::Matrix queries = SampleQueries(pts, 100, rng);
  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kApproximate;
  spec.eps = 0.2;

  auto result =
      InsituRun(pts, weights, BaseOptions(6.0), queries, spec, 0.1);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().end_to_end_throughput, 0.0);
}

}  // namespace
}  // namespace karl::core
