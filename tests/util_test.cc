// Unit tests for util: Status/Result, Rng, math helpers, Stopwatch.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/math_util.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace karl::util {
namespace {

// --------------------------- Status / Result ---------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad gamma");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad gamma");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad gamma");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIOError, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  const auto fails = []() -> Status {
    KARL_RETURN_NOT_OK(Status::Internal("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);

  const auto succeeds = []() -> Status {
    KARL_RETURN_NOT_OK(Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(succeeds().ok());
}

// --------------------------------- Rng ---------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // All buckets hit in 1000 draws.
}

TEST(RngTest, GaussianMoments) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(42);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(42);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(42);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

// ------------------------------ math_util ------------------------------

TEST(MathTest, Dot) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
}

TEST(MathTest, SquaredNorm) {
  const std::vector<double> a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredNorm(a), 25.0);
}

TEST(MathTest, SquaredDistance) {
  const std::vector<double> a{1.0, 1.0};
  const std::vector<double> b{4.0, 5.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 9.0 + 16.0);
}

TEST(MathTest, SquaredDistanceIdentity) {
  const std::vector<double> a{1.5, -2.5, 3.25};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, a), 0.0);
}

TEST(MathTest, KahanSumStability) {
  // 1 + 1e-16 * 10^8 would lose everything with naive double summation
  // order; Kahan keeps the small tail.
  std::vector<double> values{1.0};
  values.insert(values.end(), 100000000 / 1000, 0.0);  // Keep test fast:
  values.assign(100001, 1e-16);
  values[0] = 1.0;
  const double total = KahanSum(values);
  EXPECT_NEAR(total, 1.0 + 1e-16 * 100000, 1e-18);
}

TEST(MathTest, KahanAccumulatorMatchesSum) {
  KahanAccumulator acc;
  double plain = 0.0;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-1.0, 1.0);
    acc.Add(v);
    plain += v;
  }
  EXPECT_NEAR(acc.Total(), plain, 1e-9);
}

TEST(MathTest, MeanAndStdDev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
}

TEST(MathTest, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
}

TEST(MathTest, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

// ------------------------------ Stopwatch ------------------------------

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(x, 100000.0);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  const double before = sw.ElapsedSeconds();
  sw.Restart();
  EXPECT_LE(sw.ElapsedSeconds(), before + 1.0);
  EXPECT_DOUBLE_EQ(x, 100000.0);
}

TEST(StopwatchTest, MillisConsistentWithSeconds) {
  Stopwatch sw;
  const double s = sw.ElapsedSeconds();
  const double ms = sw.ElapsedMillis();
  EXPECT_GE(ms, s * 1e3 * 0.5);
}

}  // namespace
}  // namespace karl::util
