#!/usr/bin/env python3
"""Validates Prometheus text exposition format (version 0.0.4), stdlib only.

Usage:
    check_prometheus.py [FILE] [--require NAME ...]
    check_prometheus.py --self-test

Reads the exposition from FILE (or stdin when omitted or "-"), checks
every line against the format grammar, and exits non-zero with a
line-numbered diagnosis on the first class of problem found. With
--require, additionally fails unless each NAME appears as a sample
(label sets and the _sum/_count/_bucket/window suffixes of summaries
count, matching how a scraper sees series).

Checked invariants:
  * lines are comments (# HELP / # TYPE ...), blank, or samples
  * metric and label names match the Prometheus grammar
  * label values are well-formed quoted strings (escapes: \\ \" \n)
  * a label set never repeats a label key
  * sample values parse as floats (inf/nan/scientific accepted),
    optional timestamps as integers
  * # TYPE declares a known type, at most once per metric — labeled
    series of one family share a single declaration — and before any
    of that metric's samples
  * counters end in _total and gauge/counter samples are single-valued

--self-test exercises the checker against built-in labeled fixtures
(valid dimensional series must pass; duplicate label keys, bad
escapes, duplicated TYPE lines, and misnamed counters must each be
rejected) and exits non-zero on any miss.

The CI server-smoke job pipes `curl /metrics` through this script, so a
malformed exposition fails the build rather than a scrape at 3am.
"""

import argparse
import math
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class FormatError(Exception):
    def __init__(self, lineno, message):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def parse_float(text):
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    return float(text)


def parse_labels(lineno, text):
    """Parses the {...} label block; returns (labels dict, rest of line)."""
    assert text[0] == "{"
    labels = {}
    i = 1
    while True:
        if i >= len(text):
            raise FormatError(lineno, "unterminated label set")
        if text[i] == "}":
            return labels, text[i + 1:]
        match = re.match(r"[a-zA-Z_][a-zA-Z0-9_]*", text[i:])
        if not match:
            raise FormatError(lineno, f"bad label name at ...{text[i:i+20]!r}")
        name = match.group(0)
        i += len(name)
        if i >= len(text) or text[i] != "=":
            raise FormatError(lineno, f"label {name!r} missing '='")
        i += 1
        if i >= len(text) or text[i] != '"':
            raise FormatError(lineno, f"label {name!r} value not quoted")
        i += 1
        value = []
        while True:
            if i >= len(text):
                raise FormatError(lineno, f"label {name!r} value unterminated")
            ch = text[i]
            if ch == "\\":
                if i + 1 >= len(text) or text[i + 1] not in ('\\', '"', 'n'):
                    raise FormatError(
                        lineno, f"bad escape in label {name!r} value")
                value.append(text[i + 1])
                i += 2
                continue
            if ch == '"':
                i += 1
                break
            value.append(ch)
            i += 1
        if name in labels:
            raise FormatError(lineno, f"duplicate label key {name!r}")
        labels[name] = "".join(value)
        if i < len(text) and text[i] == ",":
            i += 1
        elif i >= len(text) or text[i] != "}":
            raise FormatError(
                lineno, f"expected ',' or '}}' after label {name!r}")


def check(stream):
    """Returns {metric base name -> declared type}; raises FormatError."""
    types = {}       # name -> type from # TYPE
    sampled = set()  # names that have emitted a sample already
    seen_names = set()
    for lineno, raw in enumerate(stream, start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # Free-form comment: legal, ignored.
            if parts[1] == "TYPE":
                if len(parts) != 4:
                    raise FormatError(lineno, f"malformed TYPE line: {line!r}")
                _, _, name, kind = parts
                if not METRIC_NAME_RE.match(name):
                    raise FormatError(lineno, f"bad metric name {name!r}")
                if kind not in KNOWN_TYPES:
                    raise FormatError(lineno, f"unknown type {kind!r}")
                if name in types:
                    raise FormatError(lineno, f"duplicate TYPE for {name!r}")
                if name in sampled:
                    raise FormatError(
                        lineno, f"TYPE for {name!r} after its samples")
                types[name] = kind
            elif len(parts) < 3 or not METRIC_NAME_RE.match(parts[2]):
                raise FormatError(lineno, f"malformed HELP line: {line!r}")
            continue

        match = re.match(r"[a-zA-Z_:][a-zA-Z0-9_:]*", line)
        if not match:
            raise FormatError(lineno, f"unparseable sample line: {line!r}")
        name = match.group(0)
        rest = line[len(name):]
        if rest.startswith("{"):
            _, rest = parse_labels(lineno, rest)
        fields = rest.split()
        if len(fields) not in (1, 2):
            raise FormatError(
                lineno, f"expected value [timestamp] after {name!r}")
        try:
            parse_float(fields[0])
        except ValueError:
            raise FormatError(
                lineno, f"bad sample value {fields[0]!r} for {name!r}")
        if len(fields) == 2:
            try:
                int(fields[1])
            except ValueError:
                raise FormatError(
                    lineno, f"bad timestamp {fields[1]!r} for {name!r}")
        sampled.add(name)
        seen_names.add(name)

        base = name
        for suffix in ("_sum", "_count", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
        if base in types and types[base] == "counter":
            if not base.endswith("_total"):
                raise FormatError(
                    lineno, f"counter {base!r} does not end in _total")
    return seen_names


# (name, lines, expected-error substring or None for "must pass").
SELF_TEST_FIXTURES = [
    ("labeled series", [
        '# TYPE karl_serving_requests_total counter',
        'karl_serving_requests_total{model="alpha"} 10',
        'karl_serving_requests_total{model="beta"} 3',
        '# TYPE karl_serving_eval_us summary',
        'karl_serving_eval_us{model="alpha",quantile="0.99"} 120.5',
        'karl_serving_eval_us_sum{model="alpha"} 4021',
        'karl_serving_eval_us_count{model="alpha"} 10',
        'karl_serving_eval_us_window60s{model="alpha"} 9',
        '# TYPE karl_slo_burn_rate gauge',
        'karl_slo_burn_rate{model="alpha",slo="latency",window="fast"} 0.2',
    ], None),
    ("escaped values", [
        'weird_label{path="C:\\\\tmp",note="line\\nbreak",q="say \\"hi\\""} 1',
    ], None),
    ("overflow sink", [
        '# TYPE karl_x_total counter',
        'karl_x_total{model="__other__"} 7',
    ], None),
    ("duplicate label key", [
        'm{model="a",model="b"} 1',
    ], "duplicate label key"),
    ("bad escape", [
        'm{model="a\\q"} 1',
    ], "bad escape"),
    ("bad label name", [
        'm{9model="a"} 1',
    ], "bad label name"),
    ("unterminated label set", [
        'm{model="a" 1',
    ], "expected ',' or '}'"),
    ("duplicate TYPE across labeled series", [
        '# TYPE karl_y_total counter',
        'karl_y_total{model="a"} 1',
        '# TYPE karl_y_total counter',
        'karl_y_total{model="b"} 1',
    ], "duplicate TYPE"),
    ("TYPE after samples", [
        'karl_z_total{model="a"} 1',
        '# TYPE karl_z_total counter',
    ], "after its samples"),
    ("counter missing _total", [
        '# TYPE karl_model_evictions counter',
        'karl_model_evictions{model="a"} 1',
    ], "does not end in _total"),
    ("bad sample value", [
        'm{model="a"} fast',
    ], "bad sample value"),
]


def self_test():
    failures = []
    for name, lines, expect in SELF_TEST_FIXTURES:
        try:
            check(iter(lines))
            error = None
        except FormatError as caught:
            error = str(caught)
        if expect is None and error is not None:
            failures.append(f"{name}: expected pass, got: {error}")
        elif expect is not None and error is None:
            failures.append(f"{name}: expected error {expect!r}, passed")
        elif expect is not None and expect not in error:
            failures.append(f"{name}: expected {expect!r} in: {error}")
    for failure in failures:
        print(f"check_prometheus: self-test FAIL: {failure}",
              file=sys.stderr)
    if not failures:
        print(f"check_prometheus: self-test OK "
              f"({len(SELF_TEST_FIXTURES)} fixtures)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description="Validate Prometheus text exposition format.")
    parser.add_argument("file", nargs="?", default="-",
                        help="exposition file (default: stdin)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless NAME appears as a sample "
                             "(prefix match on series names)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixture suite and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    stream = sys.stdin if args.file == "-" else open(args.file)
    try:
        seen = check(stream)
    except FormatError as error:
        print(f"check_prometheus: {error}", file=sys.stderr)
        return 1
    finally:
        if stream is not sys.stdin:
            stream.close()

    missing = [name for name in args.require
               if not any(series == name or series.startswith(name + "_")
                          or series.startswith(name + "{")
                          for series in seen)]
    if missing:
        print(f"check_prometheus: required series missing: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    print(f"check_prometheus: OK ({len(seen)} series)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
