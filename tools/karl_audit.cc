// karl_audit: randomized bound-invariant fuzz driver.
//
// Sweeps random datasets × kernels {Gaussian, polynomial even/odd,
// sigmoid} × weighting {Type I, II, III} × bound kinds {SOTA, KARL} ×
// indexes {kd-tree, ball-tree} × queries {TKAQ, eKAQ}, with the runtime
// bound auditor enabled on every engine. Any violated invariant — a node
// bound excluding its exact aggregate, a global [lb, ub] excluding the
// exact answer, an inverted interval, or a non-monotone refinement where
// monotonicity is a theorem — aborts with full diagnostics. A clean exit
// means zero violations over the whole sweep.
//
// Usage: karl_audit [--trials N] [--seed S] [--max-n N] [--verbose]
//                   [--metrics-out <file[.json]>] [--trace-out <file.json>]
//
// --metrics-out dumps the telemetry registry after the sweep (per-query
// latency/iteration/kernel-eval metrics across every audited engine);
// --trace-out records the sweep as Chrome trace-event JSON (bounded by
// the recorder's event cap, so long sweeps truncate rather than grow
// without bound).

#include <cstdio>
#include <string>
#include <vector>

#include "core/karl.h"
#include "data/synthetic.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

using karl::Engine;
using karl::EngineOptions;
using karl::core::BoundKind;
using karl::core::KernelParams;

KernelParams RandomKernel(karl::util::Rng& rng, size_t d) {
  const double gamma = rng.Uniform(0.2, 4.0) / static_cast<double>(d);
  switch (rng.UniformInt(4)) {
    case 0:
      return KernelParams::Gaussian(gamma * static_cast<double>(d) *
                                    rng.Uniform(1.0, 8.0));
    case 1:  // Even degree: convex profile, dips to 0 on mixed intervals.
      return KernelParams::Polynomial(gamma, rng.Uniform(-0.3, 0.3),
                                      rng.UniformInt(2) == 0 ? 2 : 4);
    case 2:  // Odd degree: the mixed concave/convex pivot construction.
      return KernelParams::Polynomial(gamma, rng.Uniform(-0.3, 0.3),
                                      rng.UniformInt(2) == 0 ? 3 : 5);
    default:
      return KernelParams::Sigmoid(gamma, rng.Uniform(-0.2, 0.2));
  }
}

std::vector<double> RandomWeights(karl::util::Rng& rng, size_t n,
                                  int weighting) {
  std::vector<double> w(n);
  for (auto& v : w) {
    switch (weighting) {
      case 1:
        v = 0.8;
        break;
      case 2:
        v = rng.Uniform(0.05, 2.0);
        break;
      default:
        v = rng.Uniform(-1.0, 1.0);
        if (v == 0.0) v = 0.5;
        break;
    }
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = karl::util::ParsedArgs::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "argument error: %s\n",
                 parsed.status().ToString().c_str());
    return 2;
  }
  const auto& args = parsed.value();
  const int64_t trials = args.GetInt("trials", 200).value();
  const int64_t seed = args.GetInt("seed", 1).value();
  const int64_t max_n = args.GetInt("max-n", 260).value();
  const bool verbose = args.Has("verbose");
  const std::string metrics_out = args.GetString("metrics-out");
  const std::string trace_out = args.GetString("trace-out");
  if (trials <= 0 || max_n < 32) {
    std::fprintf(stderr, "need --trials > 0 and --max-n >= 32\n");
    return 2;
  }
  karl::telemetry::TraceRecorder tracer;

  karl::util::Rng rng(static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ULL +
                      1);
  size_t queries_run = 0;
  for (int64_t trial = 0; trial < trials; ++trial) {
    const size_t n =
        32 + rng.UniformInt(static_cast<uint64_t>(max_n) - 31);  // [32, max_n]
    const size_t d = 2 + rng.UniformInt(7);
    const int weighting = 1 + static_cast<int>(rng.UniformInt(3));
    karl::data::Matrix points = karl::data::SampleClustered(
        n, d, 1 + rng.UniformInt(4), rng.Uniform(0.03, 0.15), rng);
    const auto weights = RandomWeights(rng, n, weighting);

    EngineOptions options;
    options.kernel = RandomKernel(rng, d);
    options.bounds =
        rng.UniformInt(2) == 0 ? BoundKind::kSota : BoundKind::kKarl;
    options.index_kind = rng.UniformInt(2) == 0
                             ? karl::index::IndexKind::kKdTree
                             : karl::index::IndexKind::kBallTree;
    options.leaf_capacity = 2 + rng.UniformInt(30);
    options.audit_bounds = true;
    if (!metrics_out.empty()) {
      options.metrics = &karl::telemetry::GlobalRegistry();
    }
    if (!trace_out.empty()) options.tracer = &tracer;

    auto engine = Engine::Build(points, weights, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "trial %lld: engine build failed: %s\n",
                   static_cast<long long>(trial),
                   engine.status().ToString().c_str());
      return 1;
    }

    if (verbose) {
      std::fprintf(
          stderr, "trial %lld: n=%zu d=%zu type=%s kernel=%s bounds=%s %s\n",
          static_cast<long long>(trial), n, d,
          std::string(
              karl::WeightingTypeToString(engine.value().weighting_type()))
              .c_str(),
          std::string(karl::core::KernelTypeToString(options.kernel.type))
              .c_str(),
          std::string(karl::core::BoundKindToString(options.bounds)).c_str(),
          std::string(karl::index::IndexKindToString(options.index_kind))
              .c_str());
    }

    for (int query = 0; query < 3; ++query) {
      std::vector<double> q(d);
      for (auto& v : q) v = rng.Uniform(-0.2, 1.2);
      const double exact = engine.value().Exact(q);
      // TKAQ around the exact answer (both decidable sides plus a far
      // threshold); every refinement step is audited.
      for (const double rel : {0.6, 1.5}) {
        (void)engine.value().Tkaq(q, exact * rel + (exact == 0.0 ? 0.1 : 0.0));
        ++queries_run;
      }
      // eKAQ is specified for Type I/II weighting only.
      if (weighting != 3) {
        (void)engine.value().Ekaq(q, rng.Uniform(0.05, 0.5));
        ++queries_run;
      }
    }
  }

  if (!metrics_out.empty()) {
    if (auto st = karl::telemetry::WriteMetricsFile(
            karl::telemetry::GlobalRegistry(), metrics_out);
        !st.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  if (!trace_out.empty()) {
    if (auto st = tracer.WriteJson(trace_out); !st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  std::printf(
      "karl_audit: %lld trials, %zu audited queries, 0 invariant "
      "violations\n",
      static_cast<long long>(trials), queries_run);
  return 0;
}
