// karl — command-line front end to the KARL library.
//
// Subcommands:
//   generate  --dataset <name> --out <file.csv> [--n N]
//       Writes a benchmark-dataset simulacrum as CSV.
//   build     --data <file.csv|file.libsvm> --out <model.bin>
//             [--kernel gaussian|laplacian|cauchy|polynomial|sigmoid]
//             [--gamma G] [--beta B] [--degree D] [--weight W]
//             [--index kd|ball] [--leaf-capacity C] [--bounds karl|sota]
//       Builds an engine model from data (libsvm labels become weights)
//       and saves it.
//   query     --model <model.bin> --queries <file.csv>
//             (--tau T | --eps E) [--limit N] [--threads N] [--explain]
//             [--metrics-out <file[.json]>] [--trace-out <file.json>]
//       Runs TKAQ or eKAQ over every query row; prints results,
//       throughput, and a per-query latency histogram summary.
//       --explain swaps the per-query output for one JSON line per
//       query carrying the EXPLAIN traversal profile (per-level
//       visited/pruned/exact-leaf counts and the (lb,ub) convergence
//       timeline); serial only.
//       --threads > 1 fans the queries across a worker pool via the
//       batch engine — output is bit-identical to the serial loop, in
//       the same order (per-query latency lines are then omitted; the
//       batch has no per-query timings). --metrics-out dumps the
//       telemetry registry (JSON when the path ends in .json,
//       Prometheus text otherwise); --trace-out writes a Chrome
//       trace-event JSON loadable in Perfetto.
//   compile-snapshot  <model.bin> <model.snap> [--verify]
//       Compiles a legacy engine-model file into the mmap snapshot
//       format (src/registry/snapshot.h): the engine is built once,
//       serialized flat, and thereafter servers attach it with mmap in
//       microseconds instead of rebuilding the index. --verify maps the
//       written snapshot back, attaches an engine over it, and checks
//       that exact aggregates on sampled queries are bit-identical to
//       the built engine's.
//   tune      --model <model.bin> --queries <file.csv> (--tau T | --eps E)
//       Offline-tunes the index configuration and reports the grid.
//   remote-query  --port P [--host 127.0.0.1] --queries <file.csv>
//                 (--tau T | --eps E | --exact) [--limit N] [--batch]
//                 [--metrics-out <file>] | --statusz
//       Issues the query rows against a running karl_server (see
//       tools/karl_server.cc) over the newline-delimited JSON
//       protocol; output format matches the local `query` subcommand.
//       --batch sends one batch request instead of per-row queries;
//       --metrics-out scrapes the server's /metrics afterwards.
//       --statusz skips querying and prints the server's statusz
//       document (uptime, stage latency quantiles, flight recorder).
//
// Exit status: 0 on success, 1 on usage or runtime errors.

#include <cstdio>
#include <string>

#include "core/batch.h"
#include "core/engine_io.h"
#include "core/tuning.h"
#include "data/csv_io.h"
#include "data/libsvm_io.h"
#include "data/synthetic.h"
#include "core/traversal_profile.h"
#include "ml/kde.h"
#include "registry/snapshot.h"
#include "server/client.h"
#include "server/json.h"
#include "server/protocol.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using karl::core::EngineModel;
using karl::util::ParsedArgs;

int Fail(const std::string& message) {
  std::fprintf(stderr, "karl: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: karl "
               "<generate|build|query|tune|compile-snapshot|remote-query> "
               "[--flags]\n"
               "run with a subcommand to see its required flags\n");
  return 1;
}

// Reads either CSV (dense) or LIBSVM (sparse, labelled) points. For
// LIBSVM input, labels are returned through `weights_out` when non-null.
karl::util::Result<karl::data::Matrix> ReadPoints(
    const std::string& path, std::vector<double>* weights_out) {
  if (path.size() > 7 && path.substr(path.size() - 7) == ".libsvm") {
    auto ds = karl::data::ReadLibsvmFile(path);
    if (!ds.ok()) return ds.status();
    if (weights_out != nullptr) *weights_out = ds.value().labels;
    return std::move(ds).ValueOrDie().points;
  }
  return karl::data::ReadCsvFile(path);
}

int RunGenerate(const ParsedArgs& args) {
  const std::string name = args.GetString("dataset");
  const std::string out = args.GetString("out");
  if (name.empty() || out.empty()) {
    return Fail("generate requires --dataset <name> --out <file.csv>");
  }
  auto spec = karl::data::FindDataset(name);
  if (!spec.ok()) return Fail(spec.status().ToString());
  auto n = args.GetInt("n", static_cast<int64_t>(spec.value().n));
  if (!n.ok()) return Fail(n.status().ToString());
  karl::data::DatasetSpec adjusted = spec.value();
  adjusted.n = static_cast<size_t>(n.value());
  const karl::data::Matrix points = karl::data::MakeUciLike(adjusted);
  if (auto st = karl::data::WriteCsvFile(out, points); !st.ok()) {
    return Fail(st.ToString());
  }
  std::printf("wrote %zu x %zu points to %s\n", points.rows(), points.cols(),
              out.c_str());
  return 0;
}

int RunBuild(const ParsedArgs& args) {
  const std::string data_path = args.GetString("data");
  const std::string out = args.GetString("out");
  if (data_path.empty() || out.empty()) {
    return Fail("build requires --data <file> --out <model.bin>");
  }

  std::vector<double> labels;
  auto points = ReadPoints(data_path, &labels);
  if (!points.ok()) return Fail(points.status().ToString());

  EngineModel model;
  model.points = std::move(points).ValueOrDie();

  const auto weight_flag = args.GetDouble("weight", 1.0);
  if (!weight_flag.ok()) return Fail(weight_flag.status().ToString());
  if (!labels.empty() && !args.Has("weight")) {
    model.weights = std::move(labels);  // LIBSVM labels as weights.
  } else {
    model.weights.assign(model.points.rows(), weight_flag.value());
  }

  // Kernel selection; γ defaults to Scott's rule for distance kernels.
  const std::string kernel_name = args.GetString("kernel", "gaussian");
  const auto gamma_flag = args.GetDouble(
      "gamma", karl::ml::BandwidthToGamma(
                   karl::ml::ScottBandwidth(model.points)));
  const auto beta_flag = args.GetDouble("beta", 0.0);
  const auto degree_flag = args.GetInt("degree", 3);
  if (!gamma_flag.ok()) return Fail(gamma_flag.status().ToString());
  if (!beta_flag.ok()) return Fail(beta_flag.status().ToString());
  if (!degree_flag.ok()) return Fail(degree_flag.status().ToString());
  const double gamma = gamma_flag.value();
  if (kernel_name == "gaussian") {
    model.options.kernel = karl::core::KernelParams::Gaussian(gamma);
  } else if (kernel_name == "laplacian") {
    model.options.kernel = karl::core::KernelParams::Laplacian(gamma);
  } else if (kernel_name == "cauchy") {
    model.options.kernel = karl::core::KernelParams::Cauchy(gamma);
  } else if (kernel_name == "polynomial") {
    model.options.kernel = karl::core::KernelParams::Polynomial(
        gamma, beta_flag.value(), static_cast<int>(degree_flag.value()));
  } else if (kernel_name == "sigmoid") {
    model.options.kernel =
        karl::core::KernelParams::Sigmoid(gamma, beta_flag.value());
  } else {
    return Fail("unknown kernel '" + kernel_name + "'");
  }

  const std::string index_name = args.GetString("index", "kd");
  if (index_name == "kd") {
    model.options.index_kind = karl::index::IndexKind::kKdTree;
  } else if (index_name == "ball") {
    model.options.index_kind = karl::index::IndexKind::kBallTree;
  } else {
    return Fail("unknown index '" + index_name + "' (kd|ball)");
  }
  const auto capacity = args.GetInt("leaf-capacity", 80);
  if (!capacity.ok()) return Fail(capacity.status().ToString());
  model.options.leaf_capacity = static_cast<size_t>(capacity.value());
  const std::string bounds = args.GetString("bounds", "karl");
  model.options.bounds = bounds == "sota" ? karl::core::BoundKind::kSota
                                          : karl::core::BoundKind::kKarl;

  // Validate the model by building it once before persisting.
  auto engine =
      karl::Engine::Build(model.points, model.weights, model.options);
  if (!engine.ok()) return Fail(engine.status().ToString());
  if (auto st = karl::core::SaveEngineModel(out, model); !st.ok()) {
    return Fail(st.ToString());
  }
  std::printf("model saved: %zu points, %zu dims, %s kernel (gamma=%.6g), "
              "%s index, %s bounds -> %s\n",
              model.points.rows(), model.points.cols(),
              std::string(KernelTypeToString(model.options.kernel.type))
                  .c_str(),
              model.options.kernel.gamma,
              std::string(IndexKindToString(model.options.index_kind))
                  .c_str(),
              std::string(BoundKindToString(model.options.bounds)).c_str(),
              out.c_str());
  return 0;
}

int RunQuery(const ParsedArgs& args) {
  const std::string model_path = args.GetString("model");
  const std::string query_path = args.GetString("queries");
  if (model_path.empty() || query_path.empty()) {
    return Fail("query requires --model <model.bin> --queries <file.csv>");
  }
  const bool threshold_mode = args.Has("tau");
  const bool approx_mode = args.Has("eps");
  if (threshold_mode == approx_mode) {
    return Fail("query requires exactly one of --tau or --eps");
  }
  const auto tau = args.GetDouble("tau", 0.0);
  const auto eps = args.GetDouble("eps", 0.1);
  if (!tau.ok()) return Fail(tau.status().ToString());
  if (!eps.ok()) return Fail(eps.status().ToString());
  const std::string metrics_out = args.GetString("metrics-out");
  const std::string trace_out = args.GetString("trace-out");

  // Load the model and build the engine here (instead of LoadEngine) so
  // the telemetry sinks can be attached to the build options.
  auto model = karl::core::LoadEngineModel(model_path);
  if (!model.ok()) return Fail(model.status().ToString());
  karl::telemetry::TraceRecorder tracer;
  if (!metrics_out.empty()) {
    model.value().options.metrics = &karl::telemetry::GlobalRegistry();
  }
  if (!trace_out.empty()) {
    model.value().options.tracer = &tracer;
  }
  auto engine = karl::Engine::Build(model.value().points,
                                    model.value().weights,
                                    model.value().options);
  if (!engine.ok()) return Fail(engine.status().ToString());
  auto queries = karl::data::ReadCsvFile(query_path);
  if (!queries.ok()) return Fail(queries.status().ToString());

  const auto limit = args.GetInt(
      "limit", static_cast<int64_t>(queries.value().rows()));
  if (!limit.ok()) return Fail(limit.status().ToString());
  const size_t count =
      std::min<size_t>(queries.value().rows(),
                       static_cast<size_t>(std::max<int64_t>(0, limit.value())));
  const auto threads_flag = args.GetInt("threads", 1);
  if (!threads_flag.ok()) return Fail(threads_flag.status().ToString());
  const size_t threads =
      static_cast<size_t>(std::max<int64_t>(1, threads_flag.value()));
  const bool explain = args.Has("explain");
  if (explain && threads > 1) {
    return Fail(
        "query --explain profiles one traversal at a time; drop --threads");
  }

  karl::telemetry::Histogram latency;
  karl::util::Stopwatch timer;
  if (threads > 1) {
    // Batch path: fan the query block across a worker pool. Results are
    // bit-identical to the serial loop below and printed in the same
    // index order.
    karl::data::Matrix block = std::move(queries).ValueOrDie();
    if (count < block.rows()) {
      std::vector<size_t> head(count);
      for (size_t i = 0; i < count; ++i) head[i] = i;
      block = block.SelectRows(head);
    }
    karl::util::ThreadPool pool(threads);
    if (threshold_mode) {
      const auto out = engine.value().TkaqBatch(block, tau.value(), &pool);
      for (size_t i = 0; i < out.size(); ++i) {
        std::printf("%zu\t%s\n", i, out[i] != 0 ? "above" : "below");
      }
    } else {
      const auto out = engine.value().EkaqBatch(block, eps.value(), &pool);
      for (size_t i = 0; i < out.size(); ++i) {
        std::printf("%zu\t%.12g\n", i, out[i]);
      }
    }
  } else {
    karl::util::Stopwatch query_timer;
    for (size_t i = 0; i < count; ++i) {
      const auto q = queries.value().Row(i);
      if (explain) {
        karl::core::TraversalProfile profile;
        karl::core::EvalStats stats;
        karl::server::Json out = karl::server::Json::Object();
        out.Set("query",
                karl::server::Json::Number(static_cast<double>(i)));
        query_timer.Restart();
        if (threshold_mode) {
          const bool above = engine.value().evaluator().QueryThreshold(
              q, tau.value(), &stats, nullptr, &profile);
          latency.Record(query_timer.ElapsedSeconds() * 1e6);
          out.Set("above", karl::server::Json::Bool(above));
        } else {
          const double value = engine.value().evaluator().QueryApproximate(
              q, eps.value(), &stats, nullptr, &profile);
          latency.Record(query_timer.ElapsedSeconds() * 1e6);
          out.Set("value", karl::server::Json::Number(value));
        }
        out.Set("explain", karl::server::TraversalProfileJson(profile));
        std::printf("%s\n", out.Dump().c_str());
      } else if (threshold_mode) {
        query_timer.Restart();
        const bool above = engine.value().Tkaq(q, tau.value());
        latency.Record(query_timer.ElapsedSeconds() * 1e6);
        std::printf("%zu\t%s\n", i, above ? "above" : "below");
      } else {
        query_timer.Restart();
        const double value = engine.value().Ekaq(q, eps.value());
        latency.Record(query_timer.ElapsedSeconds() * 1e6);
        std::printf("%zu\t%.12g\n", i, value);
      }
    }
  }
  const double elapsed = timer.ElapsedSeconds();
  std::fprintf(stderr, "%zu queries in %.3fs (%.0f q/s, %zu thread%s)\n",
               count, elapsed, count / std::max(elapsed, 1e-9), threads,
               threads == 1 ? "" : "s");
  const auto h = latency.Snapshot();
  if (h.count > 0) {
    std::fprintf(stderr,
                 "latency usec: min=%.1f p50=%.1f p95=%.1f p99=%.1f "
                 "max=%.1f\n",
                 h.min, h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99),
                 h.max);
  }

  if (!metrics_out.empty()) {
    if (auto st = karl::telemetry::WriteMetricsFile(
            karl::telemetry::GlobalRegistry(), metrics_out);
        !st.ok()) {
      return Fail(st.ToString());
    }
    std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (auto st = tracer.WriteJson(trace_out); !st.ok()) {
      return Fail(st.ToString());
    }
    std::fprintf(stderr, "trace written to %s (%zu events)\n",
                 trace_out.c_str(), tracer.size());
  }
  return 0;
}

int RunRemoteQuery(const ParsedArgs& args) {
  const std::string host = args.GetString("host", "127.0.0.1");
  const auto port = args.GetInt("port", 0);
  const std::string query_path = args.GetString("queries");
  if (!port.ok()) return Fail(port.status().ToString());
  if (args.Has("statusz")) {
    // Status scrape only: print the server's statusz JSON and exit —
    // no query file needed.
    if (port.value() <= 0) return Fail("remote-query requires --port");
    auto client = karl::server::Client::Connect(
        host, static_cast<int>(port.value()));
    if (!client.ok()) return Fail(client.status().ToString());
    auto statusz = client.value().Statusz();
    if (!statusz.ok()) return Fail(statusz.status().ToString());
    std::printf("%s\n", statusz.value().c_str());
    return 0;
  }
  if (port.value() <= 0 || query_path.empty()) {
    return Fail(
        "remote-query requires --port <port> --queries <file.csv> and one "
        "of --tau/--eps/--exact (or --statusz to scrape server status)");
  }
  const bool threshold_mode = args.Has("tau");
  const bool approx_mode = args.Has("eps");
  const bool exact_mode = args.Has("exact");
  if (static_cast<int>(threshold_mode) + static_cast<int>(approx_mode) +
          static_cast<int>(exact_mode) !=
      1) {
    return Fail("remote-query requires exactly one of --tau, --eps, --exact");
  }
  const auto tau = args.GetDouble("tau", 0.0);
  const auto eps = args.GetDouble("eps", 0.1);
  if (!tau.ok()) return Fail(tau.status().ToString());
  if (!eps.ok()) return Fail(eps.status().ToString());
  const bool batch = args.Has("batch");
  const std::string metrics_out = args.GetString("metrics-out");

  auto queries = karl::data::ReadCsvFile(query_path);
  if (!queries.ok()) return Fail(queries.status().ToString());
  const auto limit = args.GetInt(
      "limit", static_cast<int64_t>(queries.value().rows()));
  if (!limit.ok()) return Fail(limit.status().ToString());
  const size_t count =
      std::min<size_t>(queries.value().rows(),
                       static_cast<size_t>(std::max<int64_t>(0, limit.value())));

  auto client = karl::server::Client::Connect(
      host, static_cast<int>(port.value()));
  if (!client.ok()) return Fail(client.status().ToString());

  karl::util::Stopwatch timer;
  if (batch) {
    karl::data::Matrix block = std::move(queries).ValueOrDie();
    if (count < block.rows()) {
      std::vector<size_t> head(count);
      for (size_t i = 0; i < count; ++i) head[i] = i;
      block = block.SelectRows(head);
    }
    if (threshold_mode) {
      auto out = client.value().TkaqBatch(block, tau.value());
      if (!out.ok()) return Fail(out.status().ToString());
      for (size_t i = 0; i < out.value().size(); ++i) {
        std::printf("%zu\t%s\n", i, out.value()[i] != 0 ? "above" : "below");
      }
    } else {
      auto out = approx_mode ? client.value().EkaqBatch(block, eps.value())
                             : client.value().ExactBatch(block);
      if (!out.ok()) return Fail(out.status().ToString());
      for (size_t i = 0; i < out.value().size(); ++i) {
        std::printf("%zu\t%.12g\n", i, out.value()[i]);
      }
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      const auto q = queries.value().Row(i);
      if (threshold_mode) {
        auto above = client.value().Tkaq(q, tau.value());
        if (!above.ok()) return Fail(above.status().ToString());
        std::printf("%zu\t%s\n", i, above.value() ? "above" : "below");
      } else {
        auto value = approx_mode ? client.value().Ekaq(q, eps.value())
                                 : client.value().Exact(q);
        if (!value.ok()) return Fail(value.status().ToString());
        std::printf("%zu\t%.12g\n", i, value.value());
      }
    }
  }
  const double elapsed = timer.ElapsedSeconds();
  std::fprintf(stderr, "%zu remote queries in %.3fs (%.0f q/s, %s)\n", count,
               elapsed, count / std::max(elapsed, 1e-9),
               batch ? "one batch request" : "per-row requests");

  if (!metrics_out.empty()) {
    auto metrics = client.value().Metrics();
    if (!metrics.ok()) return Fail(metrics.status().ToString());
    std::FILE* f = std::fopen(metrics_out.c_str(), "wb");
    if (f == nullptr) {
      return Fail("cannot open '" + metrics_out + "' for writing");
    }
    std::fwrite(metrics.value().data(), 1, metrics.value().size(), f);
    std::fclose(f);
    std::fprintf(stderr, "server metrics written to %s\n",
                 metrics_out.c_str());
  }
  return 0;
}

int RunCompileSnapshot(const ParsedArgs& args) {
  if (args.positional().size() != 2) {
    return Fail(
        "compile-snapshot requires <model.bin> <model.snap> [--verify]");
  }
  const std::string& in_path = args.positional()[0];
  const std::string& out_path = args.positional()[1];

  auto model = karl::core::LoadEngineModel(in_path);
  if (!model.ok()) return Fail(model.status().ToString());
  auto engine = karl::Engine::Build(model.value().points,
                                    model.value().weights,
                                    model.value().options);
  if (!engine.ok()) return Fail(engine.status().ToString());
  if (auto st = karl::registry::WriteSnapshot(out_path, engine.value());
      !st.ok()) {
    return Fail(st.ToString());
  }

  auto mapped = karl::registry::MappedSnapshot::Map(out_path);
  if (!mapped.ok()) return Fail(mapped.status().ToString());
  std::printf(
      "snapshot compiled: %zu points, %zu dims, %s weighting, "
      "%zu bytes -> %s\n",
      model.value().points.rows(), model.value().points.cols(),
      std::string(WeightingTypeToString(engine.value().weighting_type()))
          .c_str(),
      mapped.value().file_bytes(), out_path.c_str());

  if (!args.Has("verify")) return 0;

  // Attach an engine over the freshly written snapshot and require
  // exact aggregates on sampled queries to be bit-identical to the
  // built engine's — the snapshot stores the same doubles the builder
  // computed, so any difference is corruption, not rounding.
  auto attached = karl::registry::AttachEngine(mapped.value(),
                                               nullptr, nullptr);
  if (!attached.ok()) return Fail(attached.status().ToString());
  const karl::data::Matrix& points = model.value().points;
  const size_t dims = points.cols();
  const size_t samples = std::min<size_t>(64, points.rows());
  karl::util::Rng rng(0x6b61726cu);
  std::vector<double> q(dims);
  for (size_t i = 0; i < samples; ++i) {
    const auto base = points.Row((i * 7919) % points.rows());
    for (size_t d = 0; d < dims; ++d) {
      q[d] = base[d] + rng.Uniform(-0.05, 0.05);
    }
    const double expected = engine.value().Exact(q);
    const double actual = attached.value().Exact(q);
    if (expected != actual) {
      return Fail("verify FAILED: exact aggregate mismatch on sample " +
                  std::to_string(i) + " (built " +
                  std::to_string(expected) + ", snapshot " +
                  std::to_string(actual) + ")");
    }
  }
  std::printf("verify: %zu exact aggregates bit-identical\n", samples);
  return 0;
}

int RunTune(const ParsedArgs& args) {
  const std::string model_path = args.GetString("model");
  const std::string query_path = args.GetString("queries");
  if (model_path.empty() || query_path.empty()) {
    return Fail("tune requires --model <model.bin> --queries <file.csv>");
  }
  const auto tau = args.GetDouble("tau", 0.0);
  const auto eps = args.GetDouble("eps", 0.2);
  if (!tau.ok()) return Fail(tau.status().ToString());
  if (!eps.ok()) return Fail(eps.status().ToString());

  auto model = karl::core::LoadEngineModel(model_path);
  if (!model.ok()) return Fail(model.status().ToString());
  auto queries = karl::data::ReadCsvFile(query_path);
  if (!queries.ok()) return Fail(queries.status().ToString());

  karl::core::QuerySpec spec;
  if (args.Has("tau")) {
    spec.kind = karl::core::QuerySpec::Kind::kThreshold;
    spec.tau = tau.value();
  } else {
    spec.kind = karl::core::QuerySpec::Kind::kApproximate;
    spec.eps = eps.value();
  }

  auto result = karl::core::OfflineTune(
      model.value().points, model.value().weights, model.value().options,
      queries.value(), spec, karl::core::DefaultTuningGrid());
  if (!result.ok()) return Fail(result.status().ToString());

  std::printf("%-12s %-14s %s\n", "index", "leaf-capacity", "queries/s");
  for (const auto& cand : result.value().candidates) {
    std::printf("%-12s %-14zu %.1f\n",
                std::string(IndexKindToString(cand.config.kind)).c_str(),
                cand.config.leaf_capacity, cand.throughput_qps);
  }
  std::printf("recommended: %s with leaf capacity %zu\n",
              std::string(IndexKindToString(result.value().best.kind))
                  .c_str(),
              result.value().best.leaf_capacity);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = ParsedArgs::Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  const ParsedArgs& args = parsed.value();

  int rc;
  if (args.command() == "generate") {
    rc = RunGenerate(args);
  } else if (args.command() == "build") {
    rc = RunBuild(args);
  } else if (args.command() == "query") {
    rc = RunQuery(args);
  } else if (args.command() == "tune") {
    rc = RunTune(args);
  } else if (args.command() == "compile-snapshot") {
    rc = RunCompileSnapshot(args);
  } else if (args.command() == "remote-query") {
    rc = RunRemoteQuery(args);
  } else {
    return Usage();
  }

  for (const auto& flag : args.UnusedFlags()) {
    std::fprintf(stderr, "karl: warning: unused flag --%s\n", flag.c_str());
  }
  return rc;
}
