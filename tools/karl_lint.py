#!/usr/bin/env python3
"""Repo-specific lint for the KARL codebase.

Fast, dependency-free regex checks enforcing the conventions that the
compiler cannot (and clang-tidy does not) check:

  raw-threading      std::mutex / lock_guard / condition_variable / ...
                     anywhere outside src/util/mutex.h — all code goes
                     through the annotated karl wrappers so Clang
                     thread-safety analysis sees every lock.
  bare-assert        assert(...) instead of KARL_CHECK / KARL_DCHECK
                     (static_assert is fine).
  stdout-io          std::cout / printf / fprintf(stdout, ...) in src/
                     library code — diagnostics go through util/log.h,
                     data goes through explicit streams.
  nolint-reason      NOLINT / NOLINTNEXTLINE without "(check): reason".
  tsa-optout-reason  KARL_NO_THREAD_SAFETY_ANALYSIS("") — the opt-out
                     demands a non-empty justification.
  include-guard      header guard must be KARL_<RELPATH>_H_ (path
                     relative to the repo with a leading src/ stripped);
                     #pragma once is banned.

Usage:
  karl_lint.py [--report FILE] PATH...     lint C++ files under PATHs
  karl_lint.py --self-test                 verify every rule fires on
                                           the fixture corpus

Exit status: 0 clean, 1 violations found (or a self-test gap), 2 usage.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

# Fixtures intentionally violate every rule; they are linted only by
# --self-test, never by a normal scan.
FIXTURE_DIR_NAME = "lint_fixtures"

SKIP_DIR_NAMES = {".git", "build", FIXTURE_DIR_NAME}


def repo_relpath(path: str, root: str) -> str:
    return os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Rules. Each takes (relpath, lines) and yields Finding.

RAW_THREADING = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock|condition_variable(_any)?)\b"
    r"|#\s*include\s*<(mutex|shared_mutex|condition_variable)>"
)

# Allowed to reference the raw primitives: the wrapper itself.
RAW_THREADING_EXEMPT = {"src/util/mutex.h"}

BARE_ASSERT = re.compile(r"(?<![\w.])assert\s*\(")
STD_COUT = re.compile(r"std::cout\b")
BARE_PRINTF = re.compile(r"(?<![\w.>])printf\s*\(")
FPRINTF_STDOUT = re.compile(r"fprintf\s*\(\s*stdout\b")

# NOLINT / NOLINTNEXTLINE / NOLINTBEGIN must carry "(checks): reason".
NOLINT_ANY = re.compile(r"NOLINT(NEXTLINE|BEGIN|END)?\b")
NOLINT_OK = re.compile(r"NOLINT(NEXTLINE|BEGIN)?\([^)]+\):\s*\S")
NOLINT_END = re.compile(r"NOLINTEND\b")

TSA_OPTOUT = re.compile(r"KARL_NO_THREAD_SAFETY_ANALYSIS\s*\(\s*(.?)")

GUARD_DIRECTIVE = re.compile(r"^#ifndef\s+(\w+)\s*$")
PRAGMA_ONCE = re.compile(r"^#\s*pragma\s+once\b")


def expected_guard(relpath: str) -> str:
    stem = relpath
    if stem.startswith("src/"):
        stem = stem[len("src/"):]
    token = re.sub(r"[^A-Za-z0-9]", "_", stem).upper()
    return f"KARL_{token}_"


def in_comment_or_string(line: str, pos: int) -> bool:
    """Cheap check: is `pos` inside a // comment or a string literal?"""
    comment = line.find("//")
    if 0 <= comment <= pos:
        return True
    # Count unescaped quotes before pos; odd means inside a string.
    quotes = 0
    i = 0
    while i < pos:
        if line[i] == '"' and (i == 0 or line[i - 1] != "\\"):
            quotes += 1
        i += 1
    return quotes % 2 == 1


def check_raw_threading(relpath, lines):
    if relpath in RAW_THREADING_EXEMPT:
        return
    for n, line in enumerate(lines, 1):
        m = RAW_THREADING.search(line)
        if m and not in_comment_or_string(line, m.start()):
            yield Finding(
                relpath, n, "raw-threading",
                f"'{m.group(0)}' — use the annotated wrappers in "
                "src/util/mutex.h (karl::util::Mutex, MutexLock, CondVar)")


def check_bare_assert(relpath, lines):
    for n, line in enumerate(lines, 1):
        m = BARE_ASSERT.search(line)
        if not m or in_comment_or_string(line, m.start()):
            continue
        if "static_assert" in line[max(0, m.start() - 7):m.end()]:
            continue
        yield Finding(relpath, n, "bare-assert",
                      "assert() — use KARL_CHECK (always on) or "
                      "KARL_DCHECK (debug-only) from util/check.h")


def check_stdout_io(relpath, lines):
    if not relpath.startswith("src/"):
        return
    for n, line in enumerate(lines, 1):
        for pat, what in ((STD_COUT, "std::cout"),
                          (BARE_PRINTF, "printf"),
                          (FPRINTF_STDOUT, "fprintf(stdout, ...)")):
            m = pat.search(line)
            if m and not in_comment_or_string(line, m.start()):
                yield Finding(
                    relpath, n, "stdout-io",
                    f"{what} in library code — log through util/log.h or "
                    "take an explicit stream")


def check_nolint_reason(relpath, lines):
    for n, line in enumerate(lines, 1):
        m = NOLINT_ANY.search(line)
        if not m:
            continue
        if NOLINT_END.search(line):
            continue  # NOLINTEND closes a justified NOLINTBEGIN.
        if NOLINT_OK.search(line):
            continue
        yield Finding(relpath, n, "nolint-reason",
                      "NOLINT without '(check-name): reason' — name the "
                      "check and say why the suppression is right")


def check_tsa_optout_reason(relpath, lines):
    if relpath == "src/util/mutex.h":
        return  # The macro definition itself.
    for n, line in enumerate(lines, 1):
        m = TSA_OPTOUT.search(line)
        if not m or in_comment_or_string(line, m.start()):
            continue
        arg = m.group(1)
        if arg != '"':
            # Not a string literal at all (e.g. a bare `)`): flag it.
            yield Finding(relpath, n, "tsa-optout-reason",
                          "KARL_NO_THREAD_SAFETY_ANALYSIS needs a "
                          "non-empty reason string")
            continue
        rest = line[m.end():]
        if rest.startswith('"'):  # KARL_NO_THREAD_SAFETY_ANALYSIS("")
            yield Finding(relpath, n, "tsa-optout-reason",
                          "KARL_NO_THREAD_SAFETY_ANALYSIS reason must "
                          "not be empty")


def check_include_guard(relpath, lines):
    if not relpath.endswith((".h", ".hpp")):
        return
    want = expected_guard(relpath)
    guard = None
    guard_line = 0
    for n, line in enumerate(lines, 1):
        if PRAGMA_ONCE.match(line):
            yield Finding(relpath, n, "include-guard",
                          f"#pragma once — use the guard {want}")
            return
        m = GUARD_DIRECTIVE.match(line)
        if m:
            guard = m.group(1)
            guard_line = n
            break
    if guard is None:
        yield Finding(relpath, 1, "include-guard",
                      f"missing include guard {want}")
        return
    if guard != want:
        yield Finding(relpath, guard_line, "include-guard",
                      f"guard is {guard}, expected {want}")
        return
    define = f"#define {want}"
    body = "\n".join(lines[guard_line:guard_line + 2])
    if define not in body:
        yield Finding(relpath, guard_line + 1, "include-guard",
                      f"#ifndef {want} not followed by {define}")


RULES = (
    check_raw_threading,
    check_bare_assert,
    check_stdout_io,
    check_nolint_reason,
    check_tsa_optout_reason,
    check_include_guard,
)

RULE_NAMES = (
    "raw-threading",
    "bare-assert",
    "stdout-io",
    "nolint-reason",
    "tsa-optout-reason",
    "include-guard",
)


def lint_file(path: str, root: str,
              relpath: str | None = None) -> list[Finding]:
    if relpath is None:
        relpath = repo_relpath(path, root)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().split("\n")
    except OSError as err:
        return [Finding(relpath, 0, "io", str(err))]
    findings = []
    for rule in RULES:
        findings.extend(rule(relpath, lines))
    return findings


def collect_files(paths, root):
    out = []
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(CXX_EXTENSIONS):
                out.append(p)
            continue
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in SKIP_DIR_NAMES and not d.startswith("build"))
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    out.append(os.path.join(dirpath, name))
    return out


def self_test(root: str) -> int:
    """Every rule must fire on the fixture corpus — and the fixture
    corpus only. A rule that stops firing was silently broken."""
    fixture_dir = os.path.join(root, "tools", FIXTURE_DIR_NAME)
    if not os.path.isdir(fixture_dir):
        print(f"karl_lint: fixture dir missing: {fixture_dir}",
              file=sys.stderr)
        return 1
    files = []
    for dirpath, _, filenames in os.walk(fixture_dir):
        for name in sorted(filenames):
            if name.endswith(CXX_EXTENSIONS):
                files.append(os.path.join(dirpath, name))
    findings = []
    for path in files:
        # Fixtures are linted as if they lived under src/ so the
        # library-only rules (stdout-io) apply to them too.
        virtual = f"src/{FIXTURE_DIR_NAME}/{os.path.basename(path)}"
        findings.extend(lint_file(path, root, relpath=virtual))
    fired = {f.rule for f in findings}
    status = 0
    for rule in RULE_NAMES:
        if rule in fired:
            count = sum(1 for f in findings if f.rule == rule)
            print(f"self-test: {rule}: fired {count}x")
        else:
            print(f"self-test: {rule}: DID NOT FIRE on fixtures",
                  file=sys.stderr)
            status = 1
    return status


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="karl_lint.py",
        description="Repo-specific lint for the KARL codebase.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--root", default=None,
                        help="repo root for relative paths "
                             "(default: this script's parent dir)")
    parser.add_argument("--report", default=None,
                        help="also write findings to this file")
    parser.add_argument("--self-test", action="store_true",
                        help="check that every rule fires on the "
                             "fixture corpus")
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root
        or os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

    if args.self_test:
        return self_test(root)

    if not args.paths:
        parser.print_usage(sys.stderr)
        return 2

    findings = []
    for path in collect_files(args.paths, root):
        findings.extend(lint_file(path, root))
    findings.sort(key=lambda f: (f.path, f.line))

    report_lines = [str(f) for f in findings]
    for line in report_lines:
        print(line)
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write("\n".join(report_lines) + ("\n" if report_lines else ""))
    if findings:
        print(f"karl_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
