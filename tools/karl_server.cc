// karl_server — network front end for a saved KARL engine model.
//
//   karl_server --model <model.bin> [--host 127.0.0.1] [--port 7070]
//               [--threads N] [--max-pending R] [--metrics-out <file>]
//
// Loads the model, builds the engine (with the global telemetry
// registry attached), and serves the newline-delimited JSON protocol
// (src/server/protocol.h) until SIGINT/SIGTERM, then drains in-flight
// work, optionally dumps the metrics registry to --metrics-out, and
// exits 0. `--port 0` binds an ephemeral port; the chosen port is part
// of the "listening on" line printed (and flushed) at startup, so
// wrapper scripts can scrape it.

#include <csignal>
#include <cstdio>
#include <string>

#include "core/engine_io.h"
#include "server/server.h"
#include "telemetry/metrics.h"
#include "util/flags.h"

namespace {

karl::server::Server* g_server = nullptr;

// Async-signal-safe: Server::Shutdown is a single eventfd write.
void HandleSignal(int /*signum*/) {
  if (g_server != nullptr) g_server->Shutdown();
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "karl_server: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = karl::util::ParsedArgs::Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  const karl::util::ParsedArgs& args = parsed.value();

  const std::string model_path = args.GetString("model");
  if (model_path.empty()) {
    return Fail(
        "usage: karl_server --model <model.bin> [--host H] [--port P] "
        "[--threads N] [--max-pending R] [--metrics-out <file>]");
  }
  const std::string host = args.GetString("host", "127.0.0.1");
  const auto port = args.GetInt("port", 7070);
  const auto threads = args.GetInt("threads", 0);
  const auto max_pending = args.GetInt("max-pending", 1024);
  const std::string metrics_out = args.GetString("metrics-out");
  if (!port.ok()) return Fail(port.status().ToString());
  if (!threads.ok()) return Fail(threads.status().ToString());
  if (!max_pending.ok()) return Fail(max_pending.status().ToString());
  if (port.value() < 0 || port.value() > 65535) {
    return Fail("--port must be in [0, 65535]");
  }
  if (threads.value() < 0) return Fail("--threads must be >= 0");
  if (max_pending.value() <= 0) return Fail("--max-pending must be > 0");
  for (const auto& flag : args.UnusedFlags()) {
    std::fprintf(stderr, "karl_server: warning: unused flag --%s\n",
                 flag.c_str());
  }

  auto model = karl::core::LoadEngineModel(model_path);
  if (!model.ok()) return Fail(model.status().ToString());
  model.value().options.metrics = &karl::telemetry::GlobalRegistry();
  auto engine = karl::Engine::Build(model.value().points,
                                    model.value().weights,
                                    model.value().options);
  if (!engine.ok()) return Fail(engine.status().ToString());

  karl::server::ServerOptions options;
  options.host = host;
  options.port = static_cast<int>(port.value());
  options.threads = static_cast<size_t>(threads.value());
  options.max_pending = static_cast<size_t>(max_pending.value());
  options.metrics = &karl::telemetry::GlobalRegistry();
  auto server = karl::server::Server::Start(engine.value(), options);
  if (!server.ok()) return Fail(server.status().ToString());

  g_server = server.value().get();
  struct sigaction action{};
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  std::printf("karl_server listening on %s:%d (model %s, %zu points)\n",
              host.c_str(), server.value()->port(), model_path.c_str(),
              model.value().points.rows());
  std::fflush(stdout);

  server.value()->Wait();
  g_server = nullptr;

  if (!metrics_out.empty()) {
    if (auto st = karl::telemetry::WriteMetricsFile(
            karl::telemetry::GlobalRegistry(), metrics_out);
        !st.ok()) {
      return Fail(st.ToString());
    }
    std::fprintf(stderr, "karl_server: metrics written to %s\n",
                 metrics_out.c_str());
  }
  std::printf("karl_server: drained and stopped\n");
  return 0;
}
