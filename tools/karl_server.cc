// karl_server — network front end for saved KARL models.
//
//   karl_server --model <model.bin|model.snap>
//               | --model-dir <dir> [--default-model <name>]
//               [--model-memory-budget <bytes>]
//               [--host 127.0.0.1] [--port 7070]
//               [--threads N] [--max-pending R] [--metrics-out <file>]
//               [--log-level debug|info|warn|error] [--access-log <file>]
//               [--slow-query-us N] [--trace-out <file>]
//               [--statusz-out <file>] [--admin-port P]
//               [--admin-host 127.0.0.1] [--slo-config <file>]
//
// Models are served through a registry (src/registry/registry.h):
// `--model` registers one file (legacy .bin or mmap .snap, sniffed by
// magic) as the default model; `--model-dir` scans a directory of
// *.snap / *.bin files, each served under its file stem, picked per
// request with the protocol's "model" field. `--default-model` names
// which of them answers unnamed requests (a single-model directory is
// its own default). `--model-memory-budget` bounds resident model
// bytes with LRU eviction (0 = unlimited; in-use models are never
// evicted). Models load lazily on first use; SIGHUP (or the protocol's
// op=reload) rescans the directory and atomically swaps changed files.
//
// The server answers the newline-delimited JSON protocol
// (src/server/protocol.h) until SIGINT/SIGTERM, then drains in-flight
// work, optionally dumps the metrics registry to --metrics-out (and the
// request trace to --trace-out), and exits 0. `--port 0` binds an
// ephemeral port; the chosen port is part of the "listening on" line
// printed (and flushed) at startup, so wrapper scripts can scrape it.
//
// Observability:
//   --log-level      minimum severity of the stderr diagnostics log.
//   --access-log     one NDJSON line per completed request (stage
//                    breakdown + engine stats) appended to <file>.
//   --slow-query-us  requests at or above this server-observed latency
//                    get a WARN line with the full stage breakdown.
//   --trace-out      Chrome trace (Perfetto-loadable) with per-request
//                    spans flow-linked across threads, written at exit.
//   --statusz-out    where SIGUSR1 dumps the statusz JSON document
//                    (stderr when unset). SIGUSR1 never stops serving.
//   --admin-port     HTTP scrape plane (GET /metrics /healthz /statusz
//                    /varz /flightz /modelz /explainz /sloz) on its
//                    own thread; -1 (default) disables, 0 binds an
//                    ephemeral port. The chosen port is part of the
//                    "admin on" line printed at startup.
//   --slo-config     JSON file of per-model SLO objectives (see
//                    src/server/slo_config.h for the schema). Unset
//                    serves the built-in defaults: p99-style 100ms
//                    latency / 99.9% availability budgets per model
//                    with SRE-workbook burn-rate alert thresholds.

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>

#include "registry/registry.h"
#include "server/server.h"
#include "server/slo_config.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/flags.h"
#include "util/log.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "karl_server: %s\n", message.c_str());
  return 1;
}

// Writes the statusz document to `path` ("" = stderr). Runs on the main
// thread out of sigwait — ordinary (non-async-signal) context.
void DumpStatusz(const karl::server::Server& server,
                 const std::string& path) {
  const std::string body = server.StatuszJson() + "\n";
  if (path.empty()) {
    std::fwrite(body.data(), 1, body.size(), stderr);
    std::fflush(stderr);
    return;
  }
  std::FILE* out = std::fopen(path.c_str(), "we");
  if (out == nullptr) {
    std::fprintf(stderr, "karl_server: cannot open statusz file '%s'\n",
                 path.c_str());
    return;
  }
  std::fwrite(body.data(), 1, body.size(), out);
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = karl::util::ParsedArgs::Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  const karl::util::ParsedArgs& args = parsed.value();

  const std::string model_path = args.GetString("model");
  const std::string model_dir = args.GetString("model-dir");
  const std::string default_model_flag = args.GetString("default-model");
  const auto model_memory_budget = args.GetInt("model-memory-budget", 0);
  if (model_path.empty() && model_dir.empty()) {
    return Fail(
        "usage: karl_server --model <model.bin|model.snap> | "
        "--model-dir <dir> [--default-model <name>] "
        "[--model-memory-budget <bytes>] [--host H] [--port P] "
        "[--threads N] [--max-pending R] [--metrics-out <file>] "
        "[--log-level L] [--access-log <file>] [--slow-query-us N] "
        "[--trace-out <file>] [--statusz-out <file>]");
  }
  const std::string host = args.GetString("host", "127.0.0.1");
  const auto port = args.GetInt("port", 7070);
  const auto threads = args.GetInt("threads", 0);
  const auto max_pending = args.GetInt("max-pending", 1024);
  const std::string metrics_out = args.GetString("metrics-out");
  const std::string log_level_name = args.GetString("log-level", "info");
  const std::string access_log_path = args.GetString("access-log");
  const auto slow_query_us = args.GetInt("slow-query-us", 0);
  const std::string trace_out = args.GetString("trace-out");
  const std::string statusz_out = args.GetString("statusz-out");
  const auto admin_port = args.GetInt("admin-port", -1);
  const std::string admin_host = args.GetString("admin-host", "127.0.0.1");
  const std::string slo_config_path = args.GetString("slo-config");
  if (!port.ok()) return Fail(port.status().ToString());
  if (!threads.ok()) return Fail(threads.status().ToString());
  if (!max_pending.ok()) return Fail(max_pending.status().ToString());
  if (!slow_query_us.ok()) return Fail(slow_query_us.status().ToString());
  if (port.value() < 0 || port.value() > 65535) {
    return Fail("--port must be in [0, 65535]");
  }
  if (threads.value() < 0) return Fail("--threads must be >= 0");
  if (max_pending.value() <= 0) return Fail("--max-pending must be > 0");
  if (slow_query_us.value() < 0) return Fail("--slow-query-us must be >= 0");
  if (!model_memory_budget.ok()) {
    return Fail(model_memory_budget.status().ToString());
  }
  if (model_memory_budget.value() < 0) {
    return Fail("--model-memory-budget must be >= 0 bytes (0 = unlimited)");
  }
  if (!admin_port.ok()) return Fail(admin_port.status().ToString());
  if (admin_port.value() < -1 || admin_port.value() > 65535) {
    return Fail("--admin-port must be -1 (off) or in [0, 65535]");
  }
  const auto log_level = karl::util::ParseLogLevel(log_level_name);
  if (!log_level.ok()) return Fail(log_level.status().ToString());
  for (const auto& flag : args.UnusedFlags()) {
    std::fprintf(stderr, "karl_server: warning: unused flag --%s\n",
                 flag.c_str());
  }

  karl::util::Logger::Options log_options;
  log_options.min_level = log_level.value();
  karl::util::Logger logger(stderr, log_options);

  std::unique_ptr<karl::util::Logger> access_log;
  if (!access_log_path.empty()) {
    karl::util::Logger::Options access_options;
    access_options.min_level = karl::util::LogLevel::kInfo;
    access_options.ndjson = true;
    auto opened = karl::util::Logger::Open(access_log_path, access_options);
    if (!opened.ok()) return Fail(opened.status().ToString());
    access_log = std::move(opened).ValueOrDie();
  }

  // Default-model resolution: --default-model wins; else --model's file
  // stem; else empty (a single-model directory defaults to itself, a
  // multi-model one requires requests to name their model).
  std::string default_model = default_model_flag;
  if (default_model.empty() && !model_path.empty()) {
    default_model = std::filesystem::path(model_path).stem().string();
  }

  karl::registry::RegistryOptions registry_options;
  registry_options.default_model = default_model;
  registry_options.memory_budget_bytes =
      static_cast<uint64_t>(model_memory_budget.value());
  registry_options.metrics = &karl::telemetry::GlobalRegistry();
  registry_options.logger = &logger;
  auto opened = karl::registry::ModelRegistry::Open(model_dir,
                                                    registry_options);
  if (!opened.ok()) return Fail(opened.status().ToString());
  std::unique_ptr<karl::registry::ModelRegistry> models =
      std::move(opened).ValueOrDie();
  if (!model_path.empty()) {
    const std::string name =
        std::filesystem::path(model_path).stem().string();
    if (auto st = models->AddModelFile(name, model_path); !st.ok()) {
      return Fail(st.ToString());
    }
  }
  if (models->List().empty()) {
    return Fail("no models: '" + model_dir +
                "' holds no *.snap or *.bin files");
  }

  // Load the default model now (when one resolves) so a missing or
  // corrupt file fails startup with the path in the error instead of
  // surfacing on the first query. Other models stay lazy.
  size_t boot_points = 0;
  const bool have_default = !models->default_model().empty();
  if (have_default) {
    auto handle = models->Acquire("");
    if (!handle.ok()) return Fail(handle.status().ToString());
    const karl::Engine& engine = handle.value()->engine();
    boot_points = engine.plus_tree().points().rows();
    if (engine.minus_tree() != nullptr) {
      boot_points += engine.minus_tree()->points().rows();
    }
  }

  std::unique_ptr<karl::telemetry::TraceRecorder> tracer;
  if (!trace_out.empty()) {
    tracer = std::make_unique<karl::telemetry::TraceRecorder>(1u << 20);
  }

  // Block the lifecycle signals before Start() so every thread the
  // server spawns inherits the mask; the main thread then collects them
  // synchronously with sigwait — no async-signal-context restrictions
  // on what the SIGUSR1 dump may do.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGUSR1);
  sigaddset(&sigs, SIGHUP);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  karl::server::ServerOptions options;
  options.host = host;
  options.port = static_cast<int>(port.value());
  options.threads = static_cast<size_t>(threads.value());
  options.max_pending = static_cast<size_t>(max_pending.value());
  options.metrics = &karl::telemetry::GlobalRegistry();
  options.tracer = tracer.get();
  options.logger = &logger;
  options.access_log = access_log.get();
  options.slow_query_us = static_cast<uint64_t>(slow_query_us.value());
  options.admin_port = static_cast<int>(admin_port.value());
  options.admin_host = admin_host;
  if (!slo_config_path.empty()) {
    auto slo = karl::server::LoadSloConfigFile(slo_config_path);
    if (!slo.ok()) return Fail(slo.status().ToString());
    options.slo = std::move(slo).ValueOrDie();
  }
  auto server =
      karl::server::Server::StartWithRegistry(models.get(), options);
  if (!server.ok()) return Fail(server.status().ToString());

  const size_t pool_threads =
      options.threads != 0 ? options.threads
                           : karl::util::ThreadPool::DefaultThreadCount();
  logger.Log(karl::util::LogLevel::kInfo, "server.start",
             {{"model_dir", model_dir.empty() ? "<none>" : model_dir},
              {"models", static_cast<uint64_t>(models->List().size())},
              {"default_model",
               have_default ? models->default_model() : "<none>"},
              {"model_memory_budget",
               static_cast<uint64_t>(model_memory_budget.value())},
              {"threads", static_cast<uint64_t>(pool_threads)},
              {"host", host},
              {"port", static_cast<int64_t>(server.value()->port())},
              {"max_pending", static_cast<uint64_t>(max_pending.value())},
              {"slow_query_us",
               static_cast<uint64_t>(slow_query_us.value())},
              {"tracing", tracer != nullptr},
              {"access_log",
               access_log_path.empty() ? "<off>" : access_log_path},
              {"slo_config",
               slo_config_path.empty() ? "<defaults>" : slo_config_path}});
  if (!model_path.empty()) {
    std::printf("karl_server listening on %s:%d (model %s, %zu points)\n",
                host.c_str(), server.value()->port(), model_path.c_str(),
                boot_points);
  } else if (have_default) {
    std::printf("karl_server listening on %s:%d (model %s, %zu points)\n",
                host.c_str(), server.value()->port(),
                models->default_model().c_str(), boot_points);
  } else {
    std::printf(
        "karl_server listening on %s:%d (model-dir %s, %zu models)\n",
        host.c_str(), server.value()->port(), model_dir.c_str(),
        models->List().size());
  }
  if (server.value()->admin_port() >= 0) {
    std::printf("karl_server admin on %s:%d\n", admin_host.c_str(),
                server.value()->admin_port());
  }
  std::fflush(stdout);

  while (true) {
    int signum = 0;
    if (sigwait(&sigs, &signum) != 0) break;
    if (signum == SIGUSR1) {
      logger.Log(karl::util::LogLevel::kInfo, "statusz.dump",
                 {{"path", statusz_out.empty() ? "<stderr>" : statusz_out}});
      DumpStatusz(*server.value(), statusz_out);
      continue;
    }
    if (signum == SIGHUP) {
      // Hot reload: rescan the model directory and refresh explicit
      // files; in-flight queries finish on the old mappings. Serving
      // never pauses.
      const auto st = models->Reload();
      logger.Log(st.ok() ? karl::util::LogLevel::kInfo
                         : karl::util::LogLevel::kWarn,
                 "models.reload",
                 {{"ok", st.ok()},
                  {"models", static_cast<uint64_t>(models->List().size())},
                  {"error", st.ok() ? "" : st.ToString()}});
      continue;
    }
    logger.Log(karl::util::LogLevel::kInfo, "server.drain",
               {{"signal", static_cast<int64_t>(signum)}});
    server.value()->Shutdown();
    break;
  }
  server.value()->Wait();

  if (!metrics_out.empty()) {
    if (auto st = karl::telemetry::WriteMetricsFile(
            karl::telemetry::GlobalRegistry(), metrics_out);
        !st.ok()) {
      return Fail(st.ToString());
    }
    std::fprintf(stderr, "karl_server: metrics written to %s\n",
                 metrics_out.c_str());
  }
  if (tracer != nullptr) {
    if (auto st = tracer->WriteJson(trace_out); !st.ok()) {
      return Fail(st.ToString());
    }
    logger.Log(karl::util::LogLevel::kInfo, "trace.written",
               {{"path", trace_out},
                {"events", static_cast<uint64_t>(tracer->size())},
                {"dropped", static_cast<uint64_t>(tracer->dropped())}});
  }
  std::printf("karl_server: drained and stopped\n");
  return 0;
}
