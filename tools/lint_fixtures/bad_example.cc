// Lint self-test fixture: every line below violates one karl_lint rule
// on purpose. This directory is excluded from normal scans and is only
// read by `karl_lint.py --self-test`, which asserts each rule fires.
// This file is never compiled.

#include <cassert>
#include <cstdio>
#include <iostream>
#include <mutex>

std::mutex raw_mutex;                       // raw-threading
std::condition_variable raw_cv;             // raw-threading

void BadLocking() {
  const std::lock_guard<std::mutex> lock(raw_mutex);  // raw-threading
}

void BadChecks(int n) {
  assert(n > 0);  // bare-assert
}

void BadIo() {
  std::cout << "hello\n";      // stdout-io (fixtures count as src/)
  printf("hello\n");           // stdout-io
  fprintf(stdout, "hello\n");  // stdout-io
}

int BadNolint() {
  int x = 0;
  x++;  // NOLINT
  return x;
}

void BadOptOut() KARL_NO_THREAD_SAFETY_ANALYSIS("");  // tsa-optout-reason
