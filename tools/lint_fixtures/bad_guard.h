// Lint self-test fixture: the include guard does not follow the
// KARL_<RELPATH>_H_ convention. Never compiled.

#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

#endif  // WRONG_GUARD_NAME_H
