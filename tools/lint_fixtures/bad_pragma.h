// Lint self-test fixture: #pragma once instead of an include guard.
// Never compiled.

#pragma once

inline int FixtureValue() { return 42; }
