#!/usr/bin/env bash
# Runs clang-tidy over the library sources using the compile-commands
# database of an existing build tree.
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR] [-- extra clang-tidy args]
#
#   BUILD_DIR   build tree configured with CMAKE_EXPORT_COMPILE_COMMANDS=ON
#               (default: build, then build-release as fallback).
#
# Exits 0 when no diagnostics are produced (the .clang-tidy profile sets
# WarningsAsErrors: '*'). When clang-tidy is not installed, prints a
# warning and exits 0 so optional environments (like this container,
# which ships only gcc) don't hard-fail; CI installs clang-tidy and
# therefore always runs the real check.

set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

build_dir=""
extra_args=()
if [[ $# -gt 0 && "$1" != "--" ]]; then
  build_dir="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
  extra_args=("$@")
fi

if [[ -z "${build_dir}" ]]; then
  for candidate in "${repo_root}/build" "${repo_root}/build-release"; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi

if [[ -z "${build_dir}" || ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: no compile_commands.json found; configure with" >&2
  echo "  cmake --preset release   (or -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 2
fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" > /dev/null 2>&1; then
  echo "warning: ${tidy_bin} not found; skipping lint (install clang-tidy" >&2
  echo "or set CLANG_TIDY to enable this check)" >&2
  exit 0
fi

# Library + tool sources; tests are covered through the header filter.
mapfile -t sources < <(find "${repo_root}/src" "${repo_root}/tools" \
  -name '*.cc' -o -name '*.cpp' | sort)

echo "clang-tidy (${tidy_bin}) over ${#sources[@]} files using" \
  "${build_dir}/compile_commands.json"

status=0
for source in "${sources[@]}"; do
  if ! "${tidy_bin}" -p "${build_dir}" --quiet "${extra_args[@]}" \
      "${source}"; then
    status=1
  fi
done

if [[ ${status} -eq 0 ]]; then
  echo "clang-tidy: clean"
else
  echo "clang-tidy: diagnostics above must be fixed or NOLINT'ed" >&2
fi
exit ${status}
