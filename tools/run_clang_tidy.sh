#!/usr/bin/env bash
# Runs clang-tidy over the library sources using the compile-commands
# database of an existing build tree.
#
# Usage: tools/run_clang_tidy.sh [--diff[=REF]] [BUILD_DIR] \
#            [-- extra clang-tidy args]
#
#   --diff[=REF]  lint only what changed vs REF (default origin/main):
#                 changed .cc/.cpp files, plus every .cc/.cpp that
#                 includes a changed header. Fast path for PR CI.
#   BUILD_DIR   build tree configured with CMAKE_EXPORT_COMPILE_COMMANDS=ON
#               (default: build, then build-release as fallback).
#
# Exits 0 when no diagnostics are produced (the .clang-tidy profile sets
# WarningsAsErrors: '*'). When clang-tidy is not installed, prints a
# warning and exits 0 so optional environments (like this container,
# which ships only gcc) don't hard-fail; CI installs clang-tidy and
# therefore always runs the real check.

set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

build_dir=""
extra_args=()
diff_mode=0
diff_ref="origin/main"
if [[ $# -gt 0 ]]; then
  case "$1" in
    --diff)
      diff_mode=1
      shift
      ;;
    --diff=*)
      diff_mode=1
      diff_ref="${1#--diff=}"
      shift
      ;;
  esac
fi
if [[ $# -gt 0 && "$1" != "--" ]]; then
  build_dir="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
  extra_args=("$@")
fi

if [[ -z "${build_dir}" ]]; then
  for candidate in "${repo_root}/build" "${repo_root}/build-release"; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi

if [[ -z "${build_dir}" || ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: no compile_commands.json found; configure with" >&2
  echo "  cmake --preset release   (or -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 2
fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" > /dev/null 2>&1; then
  echo "warning: ${tidy_bin} not found; skipping lint (install clang-tidy" >&2
  echo "or set CLANG_TIDY to enable this check)" >&2
  exit 0
fi

# Library + tool sources; tests are covered through the header filter.
mapfile -t sources < <(find "${repo_root}/src" "${repo_root}/tools" \
  -name '*.cc' -o -name '*.cpp' | sort)

if [[ ${diff_mode} -eq 1 ]]; then
  # Merge-base diff so a stale REF never drags in unrelated files.
  if ! base="$(git -C "${repo_root}" merge-base "${diff_ref}" HEAD \
      2> /dev/null)"; then
    echo "warning: cannot resolve ${diff_ref}; linting everything" >&2
  else
    mapfile -t changed < <(git -C "${repo_root}" diff --name-only \
      --diff-filter=d "${base}" -- '*.cc' '*.cpp' '*.h' '*.hpp')
    declare -A selected=()
    changed_headers=()
    for path in "${changed[@]}"; do
      case "${path}" in
        *.cc | *.cpp) selected["${repo_root}/${path}"]=1 ;;
        *.h | *.hpp) changed_headers+=("${path}") ;;
      esac
    done
    # A changed header selects every source that includes it (by the
    # repo-relative include spelling, e.g. "util/mutex.h").
    for header in "${changed_headers[@]}"; do
      include_name="${header#src/}"
      mapfile -t includers < <(grep -rl --include='*.cc' \
        --include='*.cpp' -F "\"${include_name}\"" \
        "${repo_root}/src" "${repo_root}/tools" 2> /dev/null || true)
      for source in "${includers[@]}"; do
        selected["${source}"]=1
      done
    done
    sources=()
    for source in "${!selected[@]}"; do
      sources+=("${source}")
    done
    mapfile -t sources < <(printf '%s\n' "${sources[@]:-}" | sed '/^$/d' \
      | sort)
    if [[ ${#sources[@]} -eq 0 ]]; then
      echo "clang-tidy: no changed sources vs ${diff_ref}; nothing to do"
      exit 0
    fi
    echo "clang-tidy --diff vs ${diff_ref}: ${#sources[@]} file(s)"
  fi
fi

echo "clang-tidy (${tidy_bin}) over ${#sources[@]} files using" \
  "${build_dir}/compile_commands.json"

status=0
for source in "${sources[@]}"; do
  if ! "${tidy_bin}" -p "${build_dir}" --quiet "${extra_args[@]}" \
      "${source}"; then
    status=1
  fi
done

if [[ ${status} -eq 0 ]]; then
  echo "clang-tidy: clean"
else
  echo "clang-tidy: diagnostics above must be fixed or NOLINT'ed" >&2
fi
exit ${status}
